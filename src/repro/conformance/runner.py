"""The differential conformance runner.

Replays one abstract event stream through the cached
:class:`~repro.core.pcu.PrivilegeCheckUnit` and the cache-free
:class:`~repro.conformance.oracle.OraclePcu` in lockstep, over *shared*
HPT/SGT trusted-memory tables, and diffs every architecturally visible
outcome: allowed vs fault subclass, current/previous domain, trusted
stack depth, and gate target.  Stall cycles are excluded by contract
(the oracle is stall-free).

On a mismatch the runner delta-shrinks the event prefix (chunked ddmin,
then single-event removal, under a replay budget) and dumps a JSON
reproducer containing the seed, the shrunk events, both outcomes, the
per-ISA pseudo-assembly listing, and the implied domain configuration.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import (
    CONFIG_16E,
    CONFIG_8E,
    CONFIG_8EN,
    AccessInfo,
    CacheId,
    DomainManager,
    GateKind,
    PcuConfig,
    PrivilegeCheckUnit,
    TrustedMemory,
)
from repro.core.errors import PrivilegeFault

from .events import (
    N_DOMAIN_SLOTS,
    Event,
    canonicalize_events,
    generate_events,
    stream_key,
)
from .generator import Backend, destination_address, gate_address, make_backend
from .oracle import OraclePcu

#: Trusted-memory window shared by every conformance world (the abstract
#: ``mem`` events are generated against this range).
TMEM_BASE = 0x100000
TMEM_SIZE = 1 << 20

#: Trusted-stack capacity, small so fuzzed gate chains hit overflow.
STACK_FRAMES = 4

#: Cache configurations the fuzzer runs under.  "stress" shrinks every
#: cache to two entries so refills and evictions dominate; "draco" adds
#: the Section-8 known-legal cache, whose stale entries are the nastiest
#: divergence source.
CONFORMANCE_CONFIGS: Dict[str, PcuConfig] = {
    "stress": PcuConfig(name="2E.stress", hpt_cache_entries=2,
                        sgt_cache_entries=2),
    "draco": PcuConfig(name="2E.draco", hpt_cache_entries=2,
                       sgt_cache_entries=2, draco_entries=4),
    "flush": PcuConfig(name="8E.flush", flush_on_switch=True),
    "16E.": CONFIG_16E,
    "8E.": CONFIG_8E,
    "8E.N": CONFIG_8EN,
}

DEFAULT_CONFIGS = ("stress", "draco")

_GATE_KINDS = {
    "hccall": GateKind.HCCALL,
    "hccalls": GateKind.HCCALLS,
    "hcrets": GateKind.HCRETS,
}


@dataclass
class Outcome:
    """Architecturally visible result of one event on one implementation."""

    status: str       # "ok", "skip", or the PrivilegeFault subclass name
    domain: int
    pdomain: int
    depth: int
    target: int = -1  # gate target pc; -1 for non-gate events

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass
class Divergence:
    """First event where the cached PCU and the oracle disagreed."""

    index: int
    event: Event
    cached: Outcome
    oracle: Outcome

    def describe(self) -> str:
        return ("event %d (%s): cached=%s oracle=%s"
                % (self.index, self.event.op,
                   self.cached.to_dict(), self.oracle.to_dict()))


class ConformanceWorld:
    """One lockstep pair: cached PCU + oracle over shared tables."""

    def __init__(
        self,
        backend: Backend,
        config: PcuConfig,
        stack_frames: int = STACK_FRAMES,
        mutate: Optional[Callable[[PrivilegeCheckUnit], None]] = None,
        oracle_only: bool = False,
        layer: str = "pcu",
    ):
        self.backend = backend
        self.stack_frames = stack_frames
        self.trusted_memory = TrustedMemory(base=TMEM_BASE, size=TMEM_SIZE)
        self.pcu = PrivilegeCheckUnit(backend.isa_map, config,
                                      self.trusted_memory)
        self.manager = DomainManager(self.pcu)
        self.manager.allocate_trusted_stack(frames=stack_frames)
        # Abstract context slot -> (cached (hcsp, hcsb, hcsl) triple,
        # oracle (window, depth)).  Contexts are single-use: a restore
        # consumes the slot, mirroring the generator's pairing discipline
        # (see events.CONTEXT_OPS) that keeps the per-window stack digest
        # sound.
        self.contexts: Dict[int, Tuple[Tuple[int, int, int], object]] = {}
        self.oracle = OraclePcu(backend.isa_map, self.pcu.hpt, self.pcu.sgt,
                                self.trusted_memory, stack_frames)
        self.oracle_only = oracle_only
        # layer == "kernel": route every cached-side call through the
        # MiniKernel syscall table so the diff also covers the dispatch
        # plumbing.  The oracle always stays bare — it is the spec.
        if layer not in ("pcu", "kernel"):
            raise ValueError("unknown conformance layer %r" % layer)
        self.layer = layer
        self.kernel_layer = None
        if layer == "kernel":
            from repro.kernel.conformance_layer import MiniKernelSyscallLayer
            self.kernel_layer = MiniKernelSyscallLayer(self.pcu, self.manager)
        # Abstract domain slot -> live concrete domain id (None = dead).
        self.slot_ids: Dict[int, Optional[int]] = {0: 0}
        self._incarnation = 0
        for slot in range(1, N_DOMAIN_SLOTS + 1):
            self.slot_ids[slot] = self.manager.create_domain(
                "slot%d" % slot).domain_id
        if mutate is not None:
            mutate(self.pcu)

    # ------------------------------------------------------------------
    # Event application.
    # ------------------------------------------------------------------
    def _outcome(self, status: str, pcu_side: bool, target: int = -1) -> Outcome:
        if pcu_side:
            return Outcome(status, self.pcu.current_domain,
                           self.pcu.previous_domain,
                           self.pcu.trusted_stack.depth, target)
        return Outcome(status, self.oracle.domain, self.oracle.pdomain,
                       self.oracle.depth, target)

    def _run_side(self, fn, pcu_side: bool) -> Outcome:
        try:
            target = fn()
        except PrivilegeFault as fault:
            return self._outcome(type(fault).__name__, pcu_side)
        return self._outcome("ok", pcu_side,
                             target if isinstance(target, int) else -1)

    def apply(self, event: Event) -> Tuple[Outcome, Outcome]:
        """Apply one event to both implementations; return both outcomes."""
        op = event.op
        if op == "check":
            access = self._access(event)

            def run_cached_check() -> None:
                if self.kernel_layer is not None:
                    from repro.kernel.syscalls import SYS_PCHECK
                    self.kernel_layer.syscall(SYS_PCHECK, access)
                else:
                    self.pcu.check(access)  # stall cycles are not compared

            cached = (self._skip(True) if self.oracle_only else
                      self._run_side(run_cached_check, True))
            oracle = self._run_side(lambda: self.oracle.check(access), False)
            return cached, oracle
        if op == "gate":
            return self._apply_gate(event)
        if op == "mem":

            def run_cached_mem() -> None:
                if self.kernel_layer is not None:
                    from repro.kernel.syscalls import SYS_PMEM
                    self.kernel_layer.syscall(SYS_PMEM, event.address)
                else:
                    self.pcu.check_memory_access(event.address)

            cached = (self._skip(True) if self.oracle_only else
                      self._run_side(run_cached_mem, True))
            oracle = self._run_side(
                lambda: self.oracle.check_memory_access(event.address), False)
            return cached, oracle
        if op == "pfch":
            if not self.oracle_only:
                target = (0 if event.csr < 0
                          else self.backend.csr_index(event.csr))
                if self.kernel_layer is not None:
                    from repro.kernel.syscalls import SYS_PFCH
                    self.kernel_layer.syscall(SYS_PFCH, target)
                else:
                    self.pcu.prefetch(target)
            return self._skip(True, "ok"), self._skip(False, "ok")
        if op == "pflh":
            if not self.oracle_only:
                if self.kernel_layer is not None:
                    from repro.kernel.syscalls import SYS_PFLH
                    self.kernel_layer.syscall(SYS_PFLH, event.cache)
                else:
                    self.pcu.flush(CacheId(event.cache))
            return self._skip(True, "ok"), self._skip(False, "ok")
        if op in ("save_ctx", "restore_ctx", "thread_stack"):
            return self._apply_context(event)
        return self._apply_reconfig(event)

    def _apply_context(self, event: Event) -> Tuple[Outcome, Outcome]:
        """Domain-0 thread-switch op on both trusted-stack models.

        A restore of an unknown context (its save or thread_stack event
        shrunk away, or the allocation skipped) degrades to an
        architectural no-op, like dead-target reconfigs.
        """
        op = event.op
        status = "ok"
        if op == "save_ctx":
            self.contexts[event.ctx] = (
                self.pcu.trusted_stack.save_context(),
                self.oracle.save_context(),
            )
        elif op == "restore_ctx":
            pair = self.contexts.pop(event.ctx, None)
            if pair is None:
                status = "skip"
            else:
                cached_ctx, oracle_ctx = pair
                self.pcu.trusted_stack.restore_context(cached_ctx)
                self.oracle.restore_context(oracle_ctx)
        else:  # thread_stack
            frames = self.stack_frames
            if self.trusted_memory.words_free < frames * 2:
                status = "skip"  # exhausted: no window on either side
            else:
                domain_id = self.slot_ids.get(event.domain)
                entry = None
                kwargs: Dict[str, int] = {}
                if domain_id not in (None, 0):
                    entry = (event.address, domain_id)
                    kwargs = {"entry_address": event.address,
                              "entry_domain": domain_id}
                context = self._manager_call("create_thread_stack", frames,
                                             **kwargs)
                self.contexts[event.ctx] = (
                    context,
                    self.oracle.create_thread_context(frames, entry),
                )
        return self._skip(True, status), self._skip(False, status)

    def _skip(self, pcu_side: bool, status: str = "skip") -> Outcome:
        return self._outcome(status, pcu_side)

    def _manager_call(self, op: str, *args, **kwargs):
        """Domain-0 management op — via SYS_DCONF under the kernel layer."""
        if self.kernel_layer is not None:
            from repro.kernel.syscalls import SYS_DCONF
            return self.kernel_layer.syscall(SYS_DCONF, op, *args, **kwargs)
        return getattr(self.manager, op)(*args, **kwargs)

    def _access(self, event: Event) -> AccessInfo:
        return AccessInfo(
            inst_class=self.backend.inst_class(event.inst),
            csr=None if event.csr < 0 else self.backend.csr_index(event.csr),
            csr_read=event.read,
            csr_write=event.write,
            write_value=event.value if event.write else None,
            old_value=event.old if event.write else None,
        )

    def _apply_gate(self, event: Event) -> Tuple[Outcome, Outcome]:
        kind = _GATE_KINDS[event.kind]
        pc = gate_address(event.gate)
        if not event.site_ok:
            pc += 8
        return_address = event.address

        def run_cached() -> int:
            if self.kernel_layer is not None:
                from repro.kernel.syscalls import SYS_PGATE
                return self.kernel_layer.syscall(SYS_PGATE, kind, event.gate,
                                                 pc, return_address)
            target, _stall = self.pcu.execute_gate(kind, event.gate, pc,
                                                   return_address)
            return target

        cached = (self._skip(True) if self.oracle_only else
                  self._run_side(run_cached, True))
        oracle = self._run_side(
            lambda: self.oracle.execute_gate(kind, event.gate, pc,
                                             return_address),
            False)
        return cached, oracle

    def _apply_reconfig(self, event: Event) -> Tuple[Outcome, Outcome]:
        """Domain-0 management op on the shared tables (one application).

        Events whose abstract target is dead (possible after shrinking
        edits the stream) degrade to architectural no-ops so replay stays
        total.
        """
        op = event.op
        backend = self.backend
        call = self._manager_call
        domain_id = self.slot_ids.get(event.domain)
        status = "ok"
        if op == "create_domain":
            if domain_id is None:
                self._incarnation += 1
                self.slot_ids[event.domain] = call(
                    "create_domain",
                    "slot%d.%d" % (event.domain, self._incarnation)).domain_id
            else:
                status = "skip"
        elif op == "destroy_domain":
            if domain_id is not None and domain_id != 0:
                call("destroy_domain", domain_id)
                self.slot_ids[event.domain] = None
            else:
                status = "skip"
        elif op == "unregister_gate":
            call("unregister_gate", event.gate)
        elif op == "register_gate":
            if domain_id is None:
                status = "skip"
            else:
                call("register_gate", gate_address(event.gate),
                     destination_address(event.gate),
                     domain_id, gate_id=event.gate)
        elif domain_id is None or domain_id == 0:
            status = "skip"  # never reconfigure domain-0's privileges
        elif op == "allow_inst":
            call("allow_instructions", domain_id,
                 [backend.inst_name(event.inst)])
        elif op == "deny_inst":
            call("deny_instruction", domain_id, backend.inst_name(event.inst))
        elif op == "grant_csr":
            if event.read or event.write:
                call("grant_register", domain_id, backend.csr_name(event.csr),
                     read=event.read, write=event.write)
            else:
                status = "skip"
        elif op == "revoke_csr":
            call("revoke_register", domain_id, backend.csr_name(event.csr),
                 read=event.read, write=event.write)
        elif op == "set_mask":
            call("set_register_mask", domain_id,
                 backend.csr_name(len(backend.csr_names) - 1), event.bits)
        elif op == "seal":
            if event.csr < 0:
                call("seal_privileges", domain_id,
                     instructions=[backend.inst_name(event.inst)])
            elif event.read or event.write:
                call("seal_privileges", domain_id,
                     csrs=[backend.csr_name(event.csr)],
                     read=event.read, write=event.write)
            else:
                status = "skip"
        else:
            raise ValueError("unknown conformance event op %r" % op)
        return self._skip(True, status), self._skip(False, status)


class DifferentialRunner:
    """Replay / diff / shrink driver for one (backend, config) pair."""

    def __init__(
        self,
        backend_name: str,
        config: str = "stress",
        stack_frames: int = STACK_FRAMES,
        mutate: Optional[Callable[[PrivilegeCheckUnit], None]] = None,
        oracle_only: bool = False,
        layer: str = "pcu",
        scrub_interval: int = 0,
    ):
        self.backend = make_backend(backend_name)
        self.config_name = config
        self.config = CONFORMANCE_CONFIGS[config]
        self.stack_frames = stack_frames
        self.mutate = mutate
        self.oracle_only = oracle_only
        self.layer = layer
        #: Events between integrity-scrub watchdog runs (0 = disabled).
        #: On a fault-free replay every scrub must come back clean; a
        #: detection here is itself a conformance failure.
        self.scrub_interval = scrub_interval
        self.outcomes: "Counter[str]" = Counter()
        self.scrubs_run = 0
        self.scrub_detections: List[str] = []

    def _world(self) -> ConformanceWorld:
        return ConformanceWorld(self.backend, self.config, self.stack_frames,
                                self.mutate, self.oracle_only,
                                layer=self.layer)

    def replay(self, events: Sequence[Event],
               count_outcomes: bool = False,
               monitor=None) -> Optional[Divergence]:
        """Replay a stream; return the first divergence (or ``None``).

        ``monitor`` is an optional
        :class:`~repro.contracts.monitor.ContractMonitor`; it is
        attached to the freshly built world so every check, gate,
        trusted-memory store and reconfiguration of this replay is
        judged against the universal contracts (shrink replays run
        unmonitored — they re-execute a prefix the monitor already saw).
        """
        world = self._world()
        if monitor is not None:
            monitor.attach(world.pcu, world.manager)
        scrubber = None
        if self.scrub_interval:
            from repro.faults.scrub import IntegrityScrubber
            scrubber = IntegrityScrubber(world.pcu, world.manager)
        for index, event in enumerate(events):
            cached, oracle = world.apply(event)
            if count_outcomes:
                self.outcomes[oracle.status] += 1
            if not self.oracle_only and cached != oracle:
                return Divergence(index, event, cached, oracle)
            if scrubber is not None and (index + 1) % self.scrub_interval == 0:
                report = scrubber.scrub(repair=False)
                self.scrubs_run += 1
                if report.detected:
                    self.scrub_detections.extend(report.cache_detections)
                    self.scrub_detections.extend(report.unrepairable)
                    if report.memory_repairs:
                        self.scrub_detections.append(
                            "%d corrupt trusted-memory word(s)"
                            % report.memory_repairs)
        return None

    # ------------------------------------------------------------------
    # Shrinking.
    # ------------------------------------------------------------------
    def shrink(self, events: Sequence[Event], divergence: Divergence,
               replay_budget: int = 400) -> List[Event]:
        """Delta-shrink to a (locally) minimal still-diverging stream."""
        needle: List[Event] = list(events[: divergence.index + 1])
        chunk = max(1, len(needle) // 2)
        while chunk >= 1 and replay_budget > 0:
            index = 0
            while index < len(needle) and replay_budget > 0:
                candidate = needle[:index] + needle[index + chunk:]
                replay_budget -= 1
                if candidate and self.replay(candidate) is not None:
                    needle = candidate
                else:
                    index += chunk
            if chunk == 1:
                break
            chunk //= 2
        return needle

    # ------------------------------------------------------------------
    # Reproducer dump.
    # ------------------------------------------------------------------
    def dump_reproducer(
        self,
        path: str,
        events: Sequence[Event],
        divergence: Divergence,
        seed: Optional[int] = None,
    ) -> None:
        manifest = {
            str(slot): {
                "instructions": sorted(entry["instructions"]),
                "csrs": sorted(entry["csrs"]),
                "mask": entry["mask"],
            }
            for slot, entry in self.backend.domain_manifest(events).items()
        }
        payload = {
            "format": "isagrid-conformance-repro-v1",
            "backend": self.backend.name,
            "config": self.config_name,
            "layer": self.layer,
            "seed": seed,
            "stream_key": stream_key(list(events)),
            "divergence": {
                "index": divergence.index,
                "event": divergence.event.to_dict(),
                "cached": divergence.cached.to_dict(),
                "oracle": divergence.oracle.to_dict(),
            },
            "events": [event.to_dict() for event in events],
            "program": self.backend.render_program(events),
            "domain_manifest": manifest,
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)


def load_reproducer(path: str) -> Tuple[str, str, List[Event]]:
    """Load a dumped reproducer; returns (backend, config, events)."""
    with open(path) as handle:
        payload = json.load(handle)
    events = [Event.from_dict(entry) for entry in payload["events"]]
    return payload["backend"], payload["config"], events


@dataclass
class ConformanceResult:
    """Result of one fuzzing run on one (backend, config) pair."""

    backend: str
    config: str
    events: int
    outcomes: Dict[str, int]
    divergence: Optional[Divergence] = None
    reproducer_path: Optional[str] = None
    #: Where the shrunk stream's contract trace landed (divergent runs
    #: with contracts on).  Deliberately NOT part of :meth:`summary` —
    #: the ``--jobs N`` byte-identity surface stays unchanged.
    contract_trace_path: Optional[str] = None
    layer: str = "pcu"
    scrub_detections: List[str] = None  # type: ignore[assignment]
    stream_key: Optional[str] = None
    #: Per-contract violation counts (None when monitoring was off).
    contract_counts: Optional[Dict[str, int]] = None
    contract_unwaived: int = 0
    contract_first: Optional[str] = None

    @property
    def clean(self) -> bool:
        return (self.divergence is None and not self.scrub_detections
                and not self.contract_unwaived)

    def summary(self) -> Dict[str, object]:
        """JSON-plain summary — the one shape both the serial CLI path
        and the orchestrator's shard payloads report through, so
        ``--jobs N`` output is line-identical with ``--jobs 1``."""
        return {
            "backend": self.backend,
            "config": self.config,
            "events": self.events,
            "outcomes": dict(self.outcomes),
            "clean": self.clean,
            "divergence": (self.divergence.describe()
                           if self.divergence is not None else None),
            "reproducer_path": self.reproducer_path,
            "scrub_detections": list(self.scrub_detections or []),
            "contracts": (dict(self.contract_counts)
                          if self.contract_counts is not None else None),
            "contract_unwaived": self.contract_unwaived,
            "contract_first": self.contract_first,
        }


def fuzz_backend(
    backend_name: str,
    seed: int,
    count: int,
    config: str = "stress",
    mutate: Optional[Callable[[PrivilegeCheckUnit], None]] = None,
    oracle_only: bool = False,
    dump_dir: Optional[str] = None,
    layer: str = "pcu",
    scrub_interval: int = 0,
    contracts: bool = True,
) -> ConformanceResult:
    """Generate a stream and differentially fuzz one backend.

    With ``contracts`` (the default) the replay runs under a
    :class:`~repro.contracts.monitor.ContractMonitor`; a fuzz run is
    only ``clean`` if, on top of zero divergences, it produced zero
    unwaived contract violations.
    """
    events = generate_events(seed, count)
    runner = DifferentialRunner(backend_name, config=config, mutate=mutate,
                                oracle_only=oracle_only, layer=layer,
                                scrub_interval=scrub_interval)
    monitor = None
    if contracts:
        from repro.contracts import ContractMonitor
        monitor = ContractMonitor(seed=seed)
    divergence = runner.replay(events, count_outcomes=True, monitor=monitor)
    result = ConformanceResult(backend_name, config, len(events),
                               dict(runner.outcomes), divergence,
                               layer=layer,
                               scrub_detections=list(runner.scrub_detections))
    if monitor is not None:
        result.contract_counts = monitor.counts()
        result.contract_unwaived = monitor.unwaived_violations
        first = monitor.first_unwaived()
        result.contract_first = None if first is None else first.describe()
    if divergence is not None:
        shrunk = runner.shrink(events, divergence)
        final = runner.replay(shrunk) or divergence
        # Dedup: rename slot ids to first-use order.  If the canonical
        # twin still reproduces (it almost always does — slot numbers are
        # arbitrary), dump *it*, so equal bugs from different seeds land
        # in byte-identical reproducer files.
        canonical = canonicalize_events(shrunk)
        canonical_divergence = runner.replay(canonical)
        if canonical_divergence is not None:
            shrunk, final = canonical, canonical_divergence
        result.divergence = final
        result.stream_key = stream_key(shrunk)
        if dump_dir is not None:
            path = "%s/conformance-repro-%s-%s-%s.json" % (
                dump_dir, backend_name, config, result.stream_key)
            runner.dump_reproducer(path, shrunk, final, seed=seed)
            result.reproducer_path = path
            if contracts:
                # Emit the ddmin-minimized divergence as a *contract
                # trace* too: one more replay of the shrunk stream under
                # a recording monitor, dumped in the corpus vocabulary so
                # the reproducer doubles as a replayable contract-layer
                # regression (no simulator needed to re-judge it).
                from repro.contracts import ContractMonitor
                trace_monitor = ContractMonitor(seed=seed, record=True)
                runner.replay(shrunk, monitor=trace_monitor)
                isa = runner.backend.isa_map
                trace_path = "%s/contract-trace-%s-%s-%s.json" % (
                    dump_dir, backend_name, config, result.stream_key)
                payload = {
                    "format": "isagrid-contract-trace-v1",
                    "backend": backend_name,
                    "config": config,
                    "seed": seed,
                    "stream_key": result.stream_key,
                    "divergence": final.describe(),
                    "geometry": {
                        "n_inst_classes": isa.n_inst_classes,
                        "n_csrs": isa.n_csrs,
                        "masked_csrs": [csr for csr in range(isa.n_csrs)
                                        if isa.mask_slot(csr) is not None],
                    },
                    "events": [event.to_dict()
                               for event in trace_monitor.recorded],
                }
                with open(trace_path, "w") as handle:
                    json.dump(payload, handle, indent=2)
                result.contract_trace_path = trace_path
    return result
