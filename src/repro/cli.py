"""Command-line interface: quick looks at the reproduced artifacts.

Usage::

    python -m repro table4            # domain-switch latencies
    python -m repro table6            # FPGA cost model
    python -m repro case3             # PKS trampoline estimate
    python -m repro attacks           # Table-1 mitigation matrix
    python -m repro decompose         # use case 1 overhead + exposure
    python -m repro hitrate           # §7.1 privilege-cache hit rates
    python -m repro scan              # §2.3 unintended instructions
    python -m repro audit             # audit the shipped decompositions
    python -m repro conformance       # differential oracle-vs-PCU fuzz
    python -m repro faults            # fault-injection campaigns
    python -m repro churn             # multi-tenant churn + slot recycling
    python -m repro bench             # evaluation rigs + perf trajectory
    python -m repro orchestrate       # status of parallel campaign runs
    python -m repro contracts         # the universal-contract layer

``conformance`` and ``faults`` monitor every run against the
universal ISA-Grid contracts by default (``--no-contracts`` turns the
tap off); any *unwaived* violation — one not attributable to an armed
fault injector — fails the run.  ``contracts --explain`` documents
each contract and the events it consumes.

``conformance`` and ``faults`` accept ``--jobs N`` to run their matrix
sharded over a supervised worker pool (with ``--resume`` and
``--shard-timeout``); reports stay byte-identical with ``--jobs 1``.
``bench`` always runs through the orchestrator and writes a
``BENCH_<stamp>.json`` trajectory (instructions/s and wall-clock per
rig) that ``--baseline`` diffs against for the CI regression gate.
All three accept ``--profile`` for per-shard cProfile dumps in the run
directory.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_table4(_args) -> int:
    from repro.analysis import render_table
    from repro.workloads.micro import (
        LITERATURE_ROWS,
        instruction_latencies,
        measure_riscv_gates,
        measure_x86_gates,
    )

    latencies = instruction_latencies()
    riscv = measure_riscv_gates(iterations=800)
    x86 = measure_x86_gates(iterations=800)
    rows = [
        ("riscv hccall", 5, round(latencies["riscv"]["hccall"], 1)),
        ("riscv hccalls / hcrets", "12 / 12",
         "%.1f / %.1f" % (latencies["riscv"]["hccalls"], latencies["riscv"]["hcrets"])),
        ("riscv X-domain (2x hccall)", 13, round(riscv["xdomain_two_hccall"], 1)),
        ("riscv X-domain (calls+rets)", 32, round(riscv["hccalls+hcrets"], 1)),
        ("x86 hccall", 34, round(x86["hccall"], 1)),
        ("x86 hccalls / hcrets", "52 / 44",
         "%.1f / %.1f" % (latencies["x86"]["hccalls"], latencies["x86"]["hcrets"])),
        ("x86 X-domain call", 74, round(x86["xdomain_hccalls_hcrets"], 1)),
    ]
    rows += [(label, cycles, "(quoted)") for label, cycles in LITERATURE_ROWS.items()]
    print(render_table(("switch", "paper cycles", "measured"), rows))
    return 0


def _cmd_table6(_args) -> int:
    from repro.analysis import render_table
    from repro.hwcost import table6_rows

    rows = table6_rows()
    print(render_table(
        ("config", "LUT", "FF", "LUT %", "FF %", "RAMB36/18", "DSP"),
        [
            (r["name"], r["lut_logic"], r["flip_flops"],
             "%.2f" % r["lut_pct"], "%.2f" % r["ff_pct"],
             "%d/%d" % (r["ramb36"], r["ramb18"]), r["dsp48e1"])
            for r in rows
        ],
    ))
    return 0


def _cmd_case3(_args) -> int:
    from repro.kernel import estimate_case3, run_pks_demo

    demo = run_pks_demo()
    estimate = estimate_case3()
    print("wrpkrs guard: inside trampoline %s / outside %s" % (
        "executes" if demo.trampoline_writes_succeeded else "BLOCKED",
        "faults" if demo.outside_write_blocked else "EXECUTES",
    ))
    print("switch cost: %.0f cycles (paper: 175)" % estimate.pks_with_isagrid_cycles)
    for label, cost in estimate.alternatives.items():
        print("    vs %-28s %4d cycles" % (label, cost))
    return 0


def _cmd_attacks(args) -> int:
    from repro.analysis import render_table
    from repro.attacks import RISCV_ATTACKS, TABLE1_ATTACKS, evaluate_attack

    if getattr(args, "campaign", False):
        return _run_attack_campaigns(args)
    rows = []
    mitigated = 0
    for spec in TABLE1_ATTACKS + RISCV_ATTACKS:
        native, decomposed = evaluate_attack(spec)
        rows.append((
            spec.name, spec.prerequisite,
            "succeeds" if native.succeeded else "blocked",
            "mitigated" if decomposed.mitigated else "NOT MITIGATED",
        ))
        mitigated += decomposed.mitigated
    print(render_table(("attack", "prerequisite", "native", "ISA-Grid"), rows))
    print("\nmitigated %d/%d" % (mitigated, len(rows)))
    return 0 if mitigated == len(rows) else 1


def _run_attack_campaigns(args) -> int:
    """Unintended-instruction campaigns: binary-scan baseline vs PCU.

    Gadget-bearing streams are generated per seed; the ERIM-style
    scanner and the PCU-enforced decode race on every planted gadget.
    Fails unless the baseline misses at least one gadget the PCU
    faults on, the legitimate stream stays fault-free, every sealed
    probe is denied, and no unwaived contract violation fired.
    """
    from repro.attacks import run_unintended_campaigns, write_attack_report

    try:
        seeds = [int(s) for s in args.seeds.split(",") if s != ""]
    except ValueError:
        print("bad --seeds %r (want comma-separated ints)" % args.seeds,
              file=sys.stderr)
        return 2
    if not seeds:
        print("no seeds given", file=sys.stderr)
        return 2
    results = run_unintended_campaigns(
        seeds, args.streams, args.stream_len, jobs=args.jobs,
        contracts=args.contracts,
    )
    for result in results:
        detected = sum(g.scanner_detected for g in result.gadgets)
        blocked = sum(g.pcu_blocked for g in result.gadgets)
        missed = sum(g.pcu_blocked and not g.scanner_detected
                     for g in result.gadgets)
        print("seed %-4d %3d streams  %4d gadgets  scanner=%d/%d  "
              "pcu=%d/%d  missed-but-blocked=%d  rewrite-corrupted=%d  "
              "unwaived=%d"
              % (result.seed, result.n_streams, len(result.gadgets),
                 detected, len(result.gadgets), blocked,
                 len(result.gadgets), missed, result.rewrite_corrupted,
                 result.unwaived_contract_violations))
    payload = write_attack_report(results, args.report)
    print("report written to %s" % args.report)
    print("scanner miss rate %.1f%%  pcu block rate %.1f%%  "
          "baseline missed %d gadget(s) the PCU blocks"
          % (payload["scanner_miss_rate"] * 100,
             payload["pcu_block_rate"] * 100,
             payload["baseline_missed_pcu_blocked"]))
    failed = False
    if not payload["baseline_missed_pcu_blocked"]:
        print("FAIL: the scanner caught everything the PCU caught — the "
              "campaign demonstrates nothing", file=sys.stderr)
        failed = True
    totals = payload["totals"]
    if totals.get("pcu_blocked") != totals.get("generated"):
        print("FAIL: %d gadget(s) escaped the PCU"
              % (totals.get("generated", 0) - totals.get("pcu_blocked", 0)),
              file=sys.stderr)
        failed = True
    if totals.get("legit_faults"):
        print("FAIL: %d false positive(s) on the legitimate stream"
              % totals["legit_faults"], file=sys.stderr)
        failed = True
    if totals.get("sealed_blocked") != totals.get("sealed_probes"):
        print("FAIL: a sealed-class probe executed", file=sys.stderr)
        failed = True
    if payload["unwaived_contract_violations"]:
        print("FAIL: %d unwaived contract violation(s)"
              % payload["unwaived_contract_violations"], file=sys.stderr)
        failed = True
    return 1 if failed else 0


def _cmd_decompose(_args) -> int:
    from repro.analysis import format_normalized
    from repro.baselines import compare_exposure
    from repro.kernel import X86Kernel
    from repro.workloads import SQLITE, normalized_time, run_riscv_app, run_x86_app

    for arch, runner in (("riscv", run_riscv_app), ("x86", run_x86_app)):
        native = runner(SQLITE, "native")
        decomposed = runner(SQLITE, "decomposed")
        print("%-6s SQLite normalized time: %s"
              % (arch, format_normalized(normalized_time(decomposed, native))))
    comparison = compare_exposure(X86Kernel("decomposed").system.manager)
    print("exposure: %d resources (levels only) -> worst domain %d (%.0fx reduction)"
          % (comparison.baseline_exposure, comparison.worst_domain_exposure,
             comparison.reduction_factor))
    return 0


def _cmd_hitrate(_args) -> int:
    from repro.core import CONFIG_8E
    from repro.kernel import X86Kernel
    from repro.workloads import GATE_STRESS
    from repro.workloads.generator import x86_user_program

    kernel = X86Kernel("decomposed", CONFIG_8E)
    kernel.run(x86_user_program(GATE_STRESS), max_steps=20_000_000)
    for cache, rate in kernel.system.pcu.stats.hit_rates().items():
        print("%-5s cache hit rate: %6.2f%%" % (cache, rate * 100))
    return 0


def _cmd_audit(_args) -> int:
    from repro.analysis import audit
    from repro.kernel import RiscvKernel, X86Kernel

    for kernel in (RiscvKernel("decomposed"), X86Kernel("decomposed")):
        manager = kernel.system.manager
        report = audit(manager)
        print("%s (%s):" % (kernel.__class__.__name__, manager.isa_map.arch))
        print("    " + report.render().replace("\n", "\n    "))
        print()
    return 0


def _cmd_scan(_args) -> int:
    from repro.baselines import scan_program
    from repro.kernel.x86_kernel import kernel_source
    from repro.x86 import KERNEL_BASE, assemble

    source, _ = kernel_source(True)
    program = assemble(source, base=KERNEL_BASE)
    print("scanning the generated x86 kernel image (%d bytes):" % program.size)
    for mnemonic, report in scan_program(program.data).items():
        print("    %-8s %3d total, %3d intended, %3d hidden" % (
            mnemonic, len(report.total_occurrences),
            len(report.intended_offsets), len(report.unintended_offsets),
        ))
    return 0


def _cmd_contracts(args) -> int:
    """List the universal contracts; --explain adds their vocabularies."""
    from repro.contracts import CONTRACT_CLASSES

    for cls in CONTRACT_CLASSES:
        print("%-24s %s" % (cls.name, cls.description))
        if args.explain:
            print("    consumes: %s" % ", ".join(cls.vocabulary))
    if args.explain:
        print()
        print("Violations during fault campaigns are waived when an armed")
        print("injector explains them; unwaived violations fail the run.")
    return 0


def _cmd_conformance(args) -> int:
    """Differential conformance fuzz: cached PCU vs the oracle spec."""
    from repro.conformance import (
        BACKEND_NAMES,
        CONFORMANCE_CONFIGS,
        DEFAULT_CONFIGS,
        DifferentialRunner,
        fuzz_backend,
        load_reproducer,
    )

    mutate = None
    if args.inject_bug:
        # Deliberate cache-fill corruption: every instruction-bitmap fill
        # flips the allow-bit of class 0.  The runner must catch it.
        def mutate(pcu):
            cache = pcu.hpt_cache.inst
            original = cache.fill
            cache.fill = lambda tag, payload: original(tag, payload ^ 1)

    if args.replay:
        try:
            backend, config, events = load_reproducer(args.replay)
        except OSError as error:
            print("cannot read reproducer: %s" % error, file=sys.stderr)
            return 2
        runner = DifferentialRunner(backend, config=config, mutate=mutate,
                                    layer=args.layer)
        divergence = runner.replay(events)
        if divergence is None:
            print("%s/%s: replay of %d events: no divergence"
                  % (backend, config, len(events)))
            return 0
        print("%s/%s: DIVERGENCE at %s" % (backend, config,
                                           divergence.describe()))
        return 1

    backends = BACKEND_NAMES if args.backend == "both" else (args.backend,)
    configs = (tuple(CONFORMANCE_CONFIGS) if args.config == "all"
               else tuple(args.config.split(",")) if args.config
               else DEFAULT_CONFIGS)
    unknown = [name for name in configs if name not in CONFORMANCE_CONFIGS]
    if unknown:
        print("unknown config %s (choose from %s)"
              % (", ".join(unknown), ", ".join(CONFORMANCE_CONFIGS)),
              file=sys.stderr)
        return 2
    if args.jobs > 1 or args.resume or args.run_dir or args.profile:
        if mutate is not None:
            print("--inject-bug needs the in-process path; drop --jobs",
                  file=sys.stderr)
            return 2
        from repro.orchestrator import orchestrate_conformance

        payloads, run, run_dir = orchestrate_conformance(
            backends, configs, args.seed, args.events,
            jobs=args.jobs, layer=args.layer,
            scrub_interval=args.scrub_interval,
            oracle_only=args.oracle_only, dump_dir=".",
            profile=args.profile, contracts=args.contracts,
            run_dir=args.run_dir, resume=args.resume,
            shard_timeout=args.shard_timeout,
        )
        failures = sum(_print_conformance_summary(p) for p in payloads)
        failures += _report_quarantine(run, run_dir)
        print(run.metrics.render())
        print("run directory: %s" % run_dir)
        return 1 if failures else 0
    failures = 0
    for backend in backends:
        for config in configs:
            result = fuzz_backend(
                backend, args.seed, args.events, config=config,
                mutate=mutate, oracle_only=args.oracle_only, dump_dir=".",
                layer=args.layer, scrub_interval=args.scrub_interval,
                contracts=args.contracts,
            )
            failures += _print_conformance_summary(result.summary())
    return 1 if failures else 0


def _print_conformance_summary(payload) -> int:
    """Print one (backend, config) fuzz summary; returns 1 on failure.

    One formatter for both execution paths keeps ``--jobs N`` output
    line-identical with the serial path.
    """
    backend, config = payload["backend"], payload["config"]
    outcomes = " ".join("%s=%d" % (k, v)
                        for k, v in sorted(payload["outcomes"].items()))
    monitored = payload.get("contracts") is not None
    contracts_note = ("  contracts=%d unwaived=%d"
                      % (sum(payload["contracts"].values()),
                         payload.get("contract_unwaived", 0))
                      if monitored else "")
    if payload["clean"]:
        print("%-6s %-10s %6d events  %s  divergences=0%s"
              % (backend, config, payload["events"], outcomes,
                 contracts_note))
        return 0
    if payload["divergence"] is not None:
        print("%-6s %-10s %6d events  DIVERGENCE: %s"
              % (backend, config, payload["events"], payload["divergence"]))
        if payload["reproducer_path"]:
            print("    reproducer dumped to %s" % payload["reproducer_path"])
    for detection in payload["scrub_detections"]:
        print("%-6s %-10s  SCRUB DETECTION: %s" % (backend, config, detection))
    if payload.get("contract_unwaived"):
        print("%-6s %-10s  CONTRACT VIOLATION: %s"
              % (backend, config,
                 payload.get("contract_first") or "unwaived violation"))
    return 1


def _report_quarantine(run, run_dir: str) -> int:
    """Surface quarantined shards; they fail the run but not the merge."""
    for spec in run.quarantined:
        print("QUARANTINED shard %s (params %s) — see %s/quarantine.json"
              % (spec.shard_id, spec.params, run_dir), file=sys.stderr)
    return len(run.quarantined)


def _cmd_faults(args) -> int:
    """Seeded fault-injection campaigns with scrub/rollback recovery."""
    from repro.conformance import CONFORMANCE_CONFIGS
    from repro.faults import CLASSIFICATIONS, run_campaigns, write_report

    backends = ("riscv", "x86") if args.backend == "both" else (args.backend,)
    if args.machine:
        return _run_machine_faults(args, backends)
    configs = (tuple(CONFORMANCE_CONFIGS) if args.config == "all"
               else tuple(args.config.split(",")))
    unknown = [name for name in configs if name not in CONFORMANCE_CONFIGS]
    if unknown:
        print("unknown config %s (choose from %s)"
              % (", ".join(unknown), ", ".join(CONFORMANCE_CONFIGS)),
              file=sys.stderr)
        return 2
    quarantined = 0
    if args.jobs > 1 or args.resume or args.run_dir or args.profile:
        from repro.orchestrator import orchestrate_faults

        matrices, run, run_dir = orchestrate_faults(
            backends, configs, args.seed, args.events, args.campaign,
            jobs=args.jobs, scrub_interval=args.scrub_interval,
            faults_per_campaign=args.faults_per_campaign,
            profile=args.profile, contracts=args.contracts,
            run_dir=args.run_dir, resume=args.resume,
            shard_timeout=args.shard_timeout,
        )
    else:
        matrices = [
            run_campaigns(
                backend, args.seed, args.events, args.campaign,
                config=config, scrub_interval=args.scrub_interval,
                faults_per_campaign=args.faults_per_campaign,
                contracts=args.contracts,
            )
            for backend in backends for config in configs
        ]
        run = run_dir = None
    for matrix in matrices:
        counts = " ".join("%s=%d" % (name, matrix.counts[name])
                          for name in CLASSIFICATIONS)
        print("%-6s %-10s %d campaigns x %d events  %s  "
              "contracts=%d unwaived=%d"
              % (matrix.backend, matrix.config, len(matrix.results),
                 args.events, counts, matrix.contract_violations,
                 matrix.unwaived_contract_violations))
        for result in matrix.widening_silent:
            print("    WIDENING SILENT DIVERGENCE: campaign %d %s (%s)"
                  % (result.campaign, result.spec.to_dict(),
                     result.detail))
    payload = write_report(matrices, args.report)
    print("report written to %s" % args.report)
    if run is not None:
        quarantined = _report_quarantine(run, run_dir)
        print(run.metrics.render())
        print("run directory: %s" % run_dir)
    if payload["widening_silent_divergences"]:
        print("FAIL: %d widening fault(s) diverged with no detection"
              % payload["widening_silent_divergences"], file=sys.stderr)
        return 1
    if payload["unwaived_contract_violations"]:
        print("FAIL: %d unwaived contract violation(s) — not attributable "
              "to any armed fault"
              % payload["unwaived_contract_violations"], file=sys.stderr)
        return 1
    return 1 if quarantined else 0


def _cmd_churn(args) -> int:
    """Tenant-churn campaigns: domain-ID virtualization under fault fire.

    Thousands of logical tenants are spawned, retired and revisited over
    a fixed pool of physical HPT slots while seeded recycle-window
    faults (mid-recycle store faults, generation flips, dropped
    flush-on-reuse) try to leak one tenant's privileges into the next.
    Every campaign runs in lockstep with the oracle and is monitored
    against all seven contracts — ``no_stale_generation`` included.
    """
    from repro.faults import (
        CLASSIFICATIONS,
        run_churn_campaigns,
        write_churn_report,
    )

    backends = ("riscv", "x86") if args.backend == "both" else (args.backend,)
    quarantined = 0
    if args.jobs > 1 or args.resume or args.run_dir or args.profile:
        from repro.orchestrator import orchestrate_churn

        matrices, run, run_dir = orchestrate_churn(
            backends, args.seed, args.ops, args.campaign,
            jobs=args.jobs, max_slots=args.slots, config=args.config,
            scrub_interval=args.scrub_interval,
            profile=args.profile, contracts=args.contracts,
            run_dir=args.run_dir, resume=args.resume,
            shard_timeout=args.shard_timeout,
        )
    else:
        matrices = [
            run_churn_campaigns(
                backend, args.seed, args.ops, args.campaign,
                max_slots=args.slots, config=args.config,
                scrub_interval=args.scrub_interval,
                contracts=args.contracts,
            )
            for backend in backends
        ]
        run = run_dir = None
    for matrix in matrices:
        counts = " ".join("%s=%d" % (name, matrix.counts[name])
                          for name in CLASSIFICATIONS)
        percentiles = matrix.to_dict()["latency_percentiles"]
        print("%-6s churn  %d campaigns x %d ops  %s  contracts "
              "unwaived=%d" % (matrix.backend, len(matrix.results),
                               matrix.n_ops, counts,
                               matrix.unwaived_contract_violations))
        print("    %d logical domains over %d slots  slot_exhausted=%d  "
              "check stall p50=%d p99=%d"
              % (matrix.logical_domains, matrix.max_slots,
                 matrix.slot_exhausted, percentiles["p50"],
                 percentiles["p99"]))
        for result in matrix.widening_silent:
            print("    WIDENING SILENT DIVERGENCE: campaign %d %s (%s)"
                  % (result.campaign, result.spec.to_dict(), result.detail))
    payload = write_churn_report(matrices, args.report)
    print("report written to %s" % args.report)
    if run is not None:
        quarantined = _report_quarantine(run, run_dir)
        print(run.metrics.render())
        print("run directory: %s" % run_dir)
    if payload["widening_silent_divergences"]:
        print("FAIL: %d widening fault(s) diverged with no detection"
              % payload["widening_silent_divergences"], file=sys.stderr)
        return 1
    if payload["unwaived_contract_violations"]:
        print("FAIL: %d unwaived contract violation(s) — not attributable "
              "to any armed fault"
              % payload["unwaived_contract_violations"], file=sys.stderr)
        return 1
    return 1 if quarantined else 0


_MACHINE_REPORT_DEFAULT = "results/machine_fault_campaigns.json"


def _run_machine_faults(args, backends) -> int:
    """Machine-level campaigns: faults under the fetch-execute loop.

    ``--events``, ``--config`` and ``--scrub-interval`` are abstract-
    campaign knobs and are ignored here; the machine mode sizes its
    pulse/scrub cadence from the workload geometry (overridable with
    ``--iterations`` / ``--pulse-interval``).
    """
    from repro.faults import (
        CLASSIFICATIONS,
        DEFAULT_MACHINE_ITERATIONS,
        run_machine_campaigns,
        write_machine_report,
    )

    iterations = (args.iterations if args.iterations is not None
                  else DEFAULT_MACHINE_ITERATIONS)
    report_path = args.report
    if report_path == "results/fault_campaigns.json":
        report_path = _MACHINE_REPORT_DEFAULT
    quarantined = 0
    if args.jobs > 1 or args.resume or args.run_dir or args.profile:
        from repro.orchestrator import orchestrate_machine_faults

        matrices, run, run_dir = orchestrate_machine_faults(
            backends, args.seed, args.campaign,
            jobs=args.jobs, iterations=iterations,
            faults_per_campaign=args.faults_per_campaign,
            pulse_interval=args.pulse_interval,
            profile=args.profile, contracts=args.contracts,
            state_changing_pulses=args.state_changing_pulses,
            run_dir=args.run_dir, resume=args.resume,
            shard_timeout=args.shard_timeout,
        )
    else:
        matrices = [
            run_machine_campaigns(
                backend, args.seed, args.campaign,
                iterations=iterations,
                faults_per_campaign=args.faults_per_campaign,
                pulse_interval=args.pulse_interval,
                contracts=args.contracts,
                state_changing_pulses=args.state_changing_pulses,
            )
            for backend in backends
        ]
        run = run_dir = None
    for matrix in matrices:
        counts = " ".join("%s=%d" % (name, matrix.counts[name])
                          for name in CLASSIFICATIONS)
        print("%-6s machine  %d campaigns x %d iterations  %s  "
              "rollbacks=%d contracts=%d unwaived=%d"
              % (matrix.backend, len(matrix.results), matrix.iterations,
                 counts, matrix.rollbacks, matrix.contract_violations,
                 matrix.unwaived_contract_violations))
        for result in matrix.widening_silent:
            print("    WIDENING SILENT DIVERGENCE: campaign %d %s (%s)"
                  % (result.campaign, result.spec.to_dict(), result.detail))
    payload = write_machine_report(matrices, report_path)
    print("report written to %s" % report_path)
    if run is not None:
        quarantined = _report_quarantine(run, run_dir)
        print(run.metrics.render())
        print("run directory: %s" % run_dir)
    if payload["widening_silent_divergences"]:
        print("FAIL: %d widening fault(s) diverged with no detection"
              % payload["widening_silent_divergences"], file=sys.stderr)
        return 1
    if payload["unwaived_contract_violations"]:
        print("FAIL: %d unwaived contract violation(s) — not attributable "
              "to any armed fault"
              % payload["unwaived_contract_violations"], file=sys.stderr)
        return 1
    return 1 if quarantined else 0


def _cmd_bench(args) -> int:
    """Run the evaluation rigs sharded; emit a perf trajectory file."""
    import os
    import time

    from repro.bench import (
        build_trajectory,
        compare_trajectories,
        load_trajectory,
        resolve_rigs,
        write_trajectory,
    )
    from repro.orchestrator import orchestrate_bench

    if args.compare:
        current_path, baseline_path = args.compare
        try:
            current = load_trajectory(current_path)
            baseline = load_trajectory(baseline_path)
        except (OSError, ValueError) as error:
            print("cannot read trajectory: %s" % error, file=sys.stderr)
            return 2
        print("comparing %s (current) vs %s (baseline)"
              % (current_path, baseline_path))
        lines, regressions = compare_trajectories(
            current, baseline, args.regress_threshold)
        for line in lines:
            print(line)
        if regressions:
            print("FAIL: %d rig(s) regressed by more than %.0f%% "
                  "instructions/s" % (len(regressions),
                                      args.regress_threshold * 100),
                  file=sys.stderr)
            return 1
        return 0

    try:
        rigs = resolve_rigs(args.rigs)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    fast_path = not args.slow_path
    block_cache = not args.no_block_cache
    payloads, run, run_dir = orchestrate_bench(
        rigs, fast_path=fast_path, block_cache=block_cache, jobs=args.jobs,
        profile=args.profile, run_dir=args.run_dir, resume=args.resume,
        shard_timeout=args.shard_timeout,
    )
    for payload in payloads:
        print("%-16s %10d inst  %14.0f cyc  %8.3f s  %10.0f inst/s"
              % (payload["rig"], payload["instructions"], payload["cycles"],
                 payload["wall_s"], payload["ips"]))
    failures = _report_quarantine(run, run_dir)
    print(run.metrics.render())
    print("run directory: %s" % run_dir)

    stamp = args.stamp or time.strftime("%Y%m%d-%H%M%S")
    out = args.out or os.path.join("results", "bench",
                                   "BENCH_%s.json" % stamp)
    trajectory = build_trajectory(payloads, label=args.label,
                                  fast_path=fast_path,
                                  block_cache=block_cache, stamp=stamp)
    write_trajectory(trajectory, out)
    print("trajectory written to %s" % out)

    if args.baseline:
        try:
            baseline = load_trajectory(args.baseline)
        except (OSError, ValueError) as error:
            print("cannot read baseline: %s" % error, file=sys.stderr)
            return 2
        lines, regressions = compare_trajectories(
            trajectory, baseline, args.regress_threshold)
        for line in lines:
            print(line)
        if regressions:
            print("FAIL: %d rig(s) regressed by more than %.0f%% "
                  "instructions/s vs %s"
                  % (len(regressions), args.regress_threshold * 100,
                     args.baseline), file=sys.stderr)
            return 1
    return 1 if failures else 0


def _cmd_orchestrate(args) -> int:
    """Inspect an orchestrated run directory (default: the latest)."""
    import json
    import os

    from repro.orchestrator import latest_run_dir, render_metrics
    from repro.orchestrator.checkpoint import MANIFEST_NAME, RunJournal

    run_dir = args.run_dir or latest_run_dir()
    if run_dir is None or not os.path.isfile(
            os.path.join(run_dir, MANIFEST_NAME)):
        print("no orchestrated run found%s; start one with "
              "'python -m repro faults --jobs N' or "
              "'python -m repro conformance --jobs N'"
              % (" at %s" % run_dir if run_dir else ""), file=sys.stderr)
        return 2
    journal = RunJournal(run_dir)
    manifest = journal.read_manifest() or {}
    shard_ids = manifest.get("shards", [])
    done = [shard_id for shard_id in shard_ids
            if os.path.isfile(journal.result_path(shard_id))]
    print("run directory: %s" % run_dir)
    print("kind: %s  fingerprint: %s" % (manifest.get("kind"),
                                         manifest.get("fingerprint")))
    print("params: %s" % json.dumps(manifest.get("params", {}),
                                    sort_keys=True))
    print("shards: %d/%d checkpointed" % (len(done), len(shard_ids)))
    quarantine = journal.read_quarantine()
    for entry in quarantine:
        print("    QUARANTINED %s: %s"
              % (entry["shard_id"], "; ".join(entry["failures"])))
    metrics = journal.read_metrics()
    if metrics is not None:
        print(render_metrics(metrics))
    else:
        print("metrics: not written yet (run in flight or interrupted; "
              "resume with --resume)")
    return 0


_COMMANDS = {
    "audit": _cmd_audit,
    "bench": _cmd_bench,
    "churn": _cmd_churn,
    "orchestrate": _cmd_orchestrate,
    "table4": _cmd_table4,
    "table6": _cmd_table6,
    "case3": _cmd_case3,
    "attacks": _cmd_attacks,
    "decompose": _cmd_decompose,
    "hitrate": _cmd_hitrate,
    "scan": _cmd_scan,
    "conformance": _cmd_conformance,
    "faults": _cmd_faults,
    "contracts": _cmd_contracts,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ISA-Grid reproduction: quick experiment runners.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True,
                                       metavar="command")
    for name in sorted(_COMMANDS):
        if name in ("attacks", "bench", "churn", "conformance", "contracts",
                    "faults", "orchestrate"):
            continue
        subparsers.add_parser(name, help="regenerate the %r artifact" % name)

    def add_orchestration_flags(subparser) -> None:
        subparser.add_argument("--jobs", type=int, default=1,
                               help="worker processes; >1 runs through the "
                                    "orchestrator (same streams, same "
                                    "report bytes as --jobs 1)")
        subparser.add_argument("--resume", action="store_true",
                               help="skip shards already checkpointed in "
                                    "the run directory")
        subparser.add_argument("--shard-timeout", type=float, default=None,
                               help="kill and retry a shard after this "
                                    "many seconds")
        subparser.add_argument("--run-dir", default=None,
                               help="checkpoint directory (default: "
                                    "results/runs/<kind>-<fingerprint>)")
        subparser.add_argument("--profile", action="store_true",
                               help="cProfile each shard; top-N cumulative "
                                    "dump written to the run directory as "
                                    "profile-<shard>.txt")

    def add_contracts_flag(subparser) -> None:
        subparser.add_argument("--contracts", default=True,
                               action=argparse.BooleanOptionalAction,
                               help="monitor the run against the universal "
                                    "ISA-Grid contracts (default on; any "
                                    "unwaived violation fails the run)")
    attacks = subparsers.add_parser(
        "attacks",
        help="Table-1 mitigation matrix; --campaign runs the "
             "unintended-instruction campaigns (binary-scan baseline vs "
             "the PCU over gadget-bearing byte streams)",
    )
    attacks.add_argument("--campaign", action="store_true",
                         help="generate gadget-bearing streams and race "
                              "the scanner against PCU-enforced decode "
                              "(default: print the Table-1 matrix)")
    attacks.add_argument("--seeds", default="0",
                         help="comma-separated campaign seeds "
                              "(one self-contained campaign per seed)")
    attacks.add_argument("--streams", type=int, default=24,
                         help="gadget-bearing streams per seed")
    attacks.add_argument("--stream-len", type=int, default=48,
                         help="instructions per stream")
    attacks.add_argument("--jobs", type=int, default=1,
                         help="process-pool workers over the seeds "
                              "(report bytes identical to --jobs 1)")
    attacks.add_argument("--report", default="results/attack_campaigns.json",
                         help="JSON report output path")
    add_contracts_flag(attacks)
    conformance = subparsers.add_parser(
        "conformance",
        help="differentially fuzz the cached PCU against the oracle spec",
    )
    conformance.add_argument("--events", type=int, default=5000,
                             help="fuzz events per (backend, config) pair")
    conformance.add_argument("--seed", type=int, default=0)
    conformance.add_argument("--backend", choices=("riscv", "x86", "both"),
                             default="both")
    conformance.add_argument("--config", default=None,
                             help="comma-separated PCU config names, or 'all'")
    conformance.add_argument("--oracle-only", action="store_true",
                             help="replay through the oracle alone "
                                  "(spec smoke test, no diffing)")
    conformance.add_argument("--inject-bug", action="store_true",
                             help="corrupt instruction-bitmap cache fills "
                                  "to demonstrate divergence detection")
    conformance.add_argument("--replay", metavar="REPRO_JSON", default=None,
                             help="replay a dumped reproducer file")
    conformance.add_argument("--layer", choices=("pcu", "kernel"),
                             default="pcu",
                             help="drive the cached side bare (pcu) or "
                                  "through the MiniKernel syscall table")
    conformance.add_argument("--scrub-interval", type=int, default=0,
                             help="run the integrity scrubber every N "
                                  "events (0 = off); any detection on a "
                                  "fault-free replay is a failure")
    add_contracts_flag(conformance)
    add_orchestration_flags(conformance)
    faults = subparsers.add_parser(
        "faults",
        help="seeded fault-injection campaigns with integrity scrubbing "
             "and recovery classification",
    )
    faults.add_argument("--events", type=int, default=2000,
                        help="events per campaign stream")
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--campaign", type=int, default=50,
                        help="number of campaigns per (backend, config)")
    faults.add_argument("--backend", choices=("riscv", "x86", "both"),
                        default="both")
    faults.add_argument("--config", default="draco",
                        help="comma-separated PCU config names, or 'all'")
    faults.add_argument("--scrub-interval", type=int, default=64,
                        help="events between watchdog scrubs")
    faults.add_argument("--report", default="results/fault_campaigns.json",
                        help="JSON report output path")
    faults.add_argument("--faults-per-campaign", type=int, default=1,
                        help="concurrent faults scheduled per campaign "
                             "(2 = dual-fault mode)")
    faults.add_argument("--machine", action="store_true",
                        help="machine-level campaigns: inject under the "
                             "fetch-execute loop of a booted MiniKernel, "
                             "in lockstep with the oracle PCU (ignores "
                             "--events/--config/--scrub-interval)")
    faults.add_argument("--iterations", type=int, default=None,
                        help="machine mode: workload outer iterations per "
                             "campaign (default: the module's calibrated "
                             "default)")
    faults.add_argument("--pulse-interval", type=int, default=None,
                        help="machine mode: instructions between "
                             "reconfiguration pulses (default: derived "
                             "from the workload geometry)")
    faults.add_argument("--state-changing-pulses", action="store_true",
                        help="machine mode: let the reconfiguration pulser "
                             "also spawn/retire scratch domains (state-"
                             "changing domain-0 transactions) instead of "
                             "only state-neutral ones")
    add_contracts_flag(faults)
    add_orchestration_flags(faults)
    churn = subparsers.add_parser(
        "churn",
        help="multi-tenant churn campaigns: logical domain-ID "
             "virtualization over a fixed slot pool, with recycle-window "
             "fault injection and generation-coherence contracts",
    )
    churn.add_argument("--ops", type=int, default=1200,
                       help="churn operations per campaign stream")
    churn.add_argument("--seed", type=int, default=0)
    churn.add_argument("--campaign", type=int, default=12,
                       help="number of campaigns per backend")
    churn.add_argument("--backend", choices=("riscv", "x86", "both"),
                       default="both")
    churn.add_argument("--slots", type=int, default=48,
                       help="physical HPT slots the virtualizer multiplexes "
                            "logical tenants over")
    churn.add_argument("--config", default="stress",
                       help="PCU config name for the churn world")
    churn.add_argument("--scrub-interval", type=int, default=64,
                       help="churn ops between watchdog scrubs")
    churn.add_argument("--report", default="results/churn_campaigns.json",
                       help="JSON report output path")
    add_contracts_flag(churn)
    add_orchestration_flags(churn)
    bench = subparsers.add_parser(
        "bench",
        help="run the Table-4/5 and Fig-5-8 rigs sharded and emit a "
             "BENCH_<stamp>.json perf trajectory",
    )
    bench.add_argument("--rigs", default=None,
                       help="comma-separated rig names, 'all', or "
                            "'default' (the full evaluation suite)")
    bench.add_argument("--slow-path", action="store_true",
                       help="disable the PCU's compiled verdict plan in "
                            "every rig (the fast path's escape hatch; "
                            "results must be identical, only slower)")
    bench.add_argument("--no-block-cache", action="store_true",
                       help="disable the block-summary executor in every "
                            "rig (DESIGN \u00a73.18 escape hatch; results "
                            "must be identical, only slower)")
    bench.add_argument("--compare", nargs=2, default=None,
                       metavar=("CURRENT", "BASELINE"),
                       help="don't run anything: diff two BENCH_*.json "
                            "trajectories rig by rig (speedups and "
                            "regressions on instructions/s) and exit "
                            "non-zero on --regress-threshold violations")
    bench.add_argument("--label", default="",
                       help="free-form label stored in the trajectory "
                            "(e.g. 'seed' or a commit id)")
    bench.add_argument("--stamp", default=None,
                       help="trajectory stamp (default: current UTC-less "
                            "local time, YYYYmmdd-HHMMSS)")
    bench.add_argument("--out", default=None,
                       help="trajectory output path (default: "
                            "results/bench/BENCH_<stamp>.json)")
    bench.add_argument("--baseline", default=None,
                       help="committed BENCH_*.json to diff against; "
                            "instructions/s regressions beyond "
                            "--regress-threshold fail the run")
    bench.add_argument("--regress-threshold", type=float, default=0.20,
                       help="relative instructions/s loss tolerated per "
                            "rig before --baseline fails (default 0.20)")
    add_orchestration_flags(bench)
    orchestrate = subparsers.add_parser(
        "orchestrate",
        help="inspect orchestrated run directories (checkpoints, "
             "quarantine, metrics)",
    )
    orchestrate.add_argument("--status", action="store_true",
                             help="print the status of a run directory "
                                  "(the default action)")
    orchestrate.add_argument("--run-dir", default=None,
                             help="run directory to inspect (default: the "
                                  "most recent under results/runs)")
    contracts = subparsers.add_parser(
        "contracts",
        help="list the universal ISA-Grid contracts the campaigns are "
             "checked against",
    )
    contracts.add_argument("--explain", action="store_true",
                           help="also print each contract's event "
                                "vocabulary and the waiver semantics")
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
