"""Brute-force reference for the contract layer's verdicts.

An independent re-derivation of what the eight universal contracts
should report for a given event stream, written as flat single-purpose
passes (one list of per-event violation counts each) plus an explicit
model of the monitor's delivery discipline (transaction buffering,
waiver arming).  The stateful test cross-checks
:func:`repro.contracts.replay_trace` against this on random streams:
agreement on every per-contract count *and* on the unwaived total is
the acceptance bar.
"""

from typing import Dict, List, Tuple

from repro.contracts import TraceEvent

DOMAIN_0 = 0


def normalize(events) -> List[TraceEvent]:
    """Reproduce the monitor's delivery order.

    Reconfig events inside an open transaction are held back until the
    commit (and dropped by an abort, like the mutation they describe);
    everything else is delivered in feed order.
    """
    out: List[TraceEvent] = []
    buffer: List[TraceEvent] = []
    in_txn = False
    for event in events:
        if event.kind == "txn":
            if event.op == "begin":
                in_txn, buffer = True, []
                out.append(event)
            elif event.op == "commit":
                in_txn = False
                out.extend(buffer)
                buffer = []
                out.append(event)
            else:                      # abort
                in_txn, buffer = False, []
                out.append(event)
        elif event.kind == "reconfig" and in_txn:
            buffer.append(event)
        else:
            out.append(event)
    return out


def _inst_counts(stream) -> List[int]:
    allowed: Dict[int, set] = {}
    out = []
    for event in stream:
        n = 0
        if event.kind == "reconfig":
            if event.op in ("create_domain", "clear_domain"):
                allowed[event.domain] = set()
            elif event.op == "allow_inst":
                allowed.setdefault(event.domain, set()).add(event.inst)
            elif event.op == "deny_inst":
                allowed.setdefault(event.domain, set()).discard(event.inst)
        elif (event.kind == "check" and event.status == "ok"
              and event.domain != DOMAIN_0 and event.inst >= 0
              and event.inst not in allowed.get(event.domain, set())):
            n = 1
        out.append(n)
    return out


def _csr_counts(stream, masked) -> List[int]:
    readable: Dict[int, set] = {}
    writable: Dict[int, set] = {}
    masks: Dict[Tuple[int, int], int] = {}
    out = []
    for event in stream:
        n = 0
        if event.kind == "reconfig":
            if event.op in ("create_domain", "clear_domain"):
                readable[event.domain] = set()
                writable[event.domain] = set()
                masks = {key: bits for key, bits in masks.items()
                         if key[0] != event.domain}
            elif event.op == "grant_csr":
                if event.read:
                    readable.setdefault(event.domain, set()).add(event.csr)
                if event.write:
                    writable.setdefault(event.domain, set()).add(event.csr)
            elif event.op == "revoke_csr":
                if event.read:
                    readable.setdefault(event.domain,
                                        set()).discard(event.csr)
                if event.write:
                    writable.setdefault(event.domain,
                                        set()).discard(event.csr)
            elif event.op == "set_mask":
                masks[(event.domain, event.csr)] = event.bits
        elif (event.kind == "check" and event.status == "ok"
              and event.domain != DOMAIN_0 and event.csr >= 0):
            if event.read and event.csr not in readable.get(event.domain,
                                                            set()):
                n += 1
            if event.write:
                if event.csr in masked:
                    mask = masks.get((event.domain, event.csr), 0)
                    if (event.old ^ event.value) & ~mask:
                        n += 1
                elif event.csr not in writable.get(event.domain, set()):
                    n += 1
        out.append(n)
    return out


def _gate_counts(stream) -> List[int]:
    expected = DOMAIN_0
    gates: Dict[int, int] = {}
    out = []
    for event in stream:
        n = 0
        if event.kind == "reconfig":
            if event.op == "register_gate":
                gates[event.gate] = event.dest
            elif event.op == "unregister_gate":
                gates.pop(event.gate, None)
            elif event.op == "sync_domain":
                expected = event.domain
        elif event.kind == "check":
            if event.domain != expected:
                n = 1
                expected = event.domain
        elif event.kind == "mem_write":
            if event.domain >= 0 and event.domain != expected:
                n = 1
                expected = event.domain
        elif event.kind == "gate":
            if event.pre_domain != expected:
                n += 1
                expected = event.pre_domain
            if event.status != "ok":
                if event.domain != expected:
                    n += 1
                    expected = event.domain
            else:
                if event.op in ("hccall", "hccalls"):
                    dest = gates.get(event.gate)
                    if dest is None or event.domain != dest:
                        n += 1
                elif event.op == "hcrets" and event.domain == DOMAIN_0:
                    n += 1
                expected = event.domain
        out.append(n)
    return out


def _d0_counts(stream) -> List[int]:
    in_txn = False
    out = []
    for event in stream:
        n = 0
        if event.kind == "txn":
            in_txn = event.op == "begin"
        elif (event.kind == "mem_write" and event.op == "sw"
              and not in_txn and event.domain not in (-1, DOMAIN_0)):
            n = 1
        out.append(n)
    return out


def _revoke_counts(stream, masked) -> List[int]:
    # (domain, kind, item) -> "granted" | "revoked"; absent = never seen
    state: Dict[Tuple[int, str, int], str] = {}

    def grant(domain, kind, item):
        state[(domain, kind, item)] = "granted"

    def revoke(domain, kind, item):
        if state.get((domain, kind, item)) == "granted":
            state[(domain, kind, item)] = "revoked"

    out = []
    for event in stream:
        n = 0
        if event.kind == "reconfig":
            if event.op == "create_domain":
                for key in [key for key in state if key[0] == event.domain]:
                    del state[key]
            elif event.op == "clear_domain":
                for key in state:
                    if key[0] == event.domain and state[key] == "granted":
                        state[key] = "revoked"
            elif event.op == "allow_inst":
                grant(event.domain, "inst", event.inst)
            elif event.op == "deny_inst":
                revoke(event.domain, "inst", event.inst)
            elif event.op == "grant_csr":
                if event.read:
                    grant(event.domain, "read", event.csr)
                if event.write:
                    grant(event.domain, "write", event.csr)
            elif event.op == "revoke_csr":
                if event.read:
                    revoke(event.domain, "read", event.csr)
                if event.write:
                    revoke(event.domain, "write", event.csr)
        elif (event.kind == "check" and event.status == "ok"
              and event.domain != DOMAIN_0):
            if state.get((event.domain, "inst", event.inst)) == "revoked":
                n += 1
            if event.csr >= 0:
                if (event.read and state.get((event.domain, "read",
                                              event.csr)) == "revoked"):
                    n += 1
                if (event.write and event.csr not in masked
                        and state.get((event.domain, "write",
                                       event.csr)) == "revoked"):
                    n += 1
        out.append(n)
    return out


def _rollback_counts(stream) -> List[int]:
    in_txn = False
    first_touch: Dict[int, int] = {}
    out = []
    for event in stream:
        n = 0
        if event.kind == "mem_write":
            if in_txn:
                first_touch.setdefault(event.address, event.old)
        elif event.kind == "txn":
            if event.op == "begin":
                in_txn, first_touch = True, {}
            elif event.op == "commit":
                in_txn, first_touch = False, {}
            else:                      # abort
                observed = event.values or {}
                n = sum(1 for address, want in first_touch.items()
                        if observed.get(address, want) != want)
                in_txn, first_touch = False, {}
        out.append(n)
    return out


def _stale_generation_counts(stream) -> List[int]:
    slot_gen: Dict[int, int] = {}
    bound: Dict[int, int] = {}
    entry_gen: Dict[int, int] = {}
    out = []
    for event in stream:
        n = 0
        if event.kind == "reconfig":
            if event.op == "bind_slot":
                slot_gen[event.domain] = event.bits
                bound[event.domain] = event.dest
            elif event.op == "recycle_slot":
                slot_gen[event.domain] = event.bits
                bound.pop(event.domain, None)
        elif event.kind == "gate" and event.status == "ok":
            if event.domain in slot_gen:
                entry_gen[event.domain] = slot_gen[event.domain]
        elif (event.kind == "check" and event.status == "ok"
              and event.domain != DOMAIN_0 and event.domain in slot_gen):
            current = slot_gen[event.domain]
            if event.domain not in bound:
                n = 1
            elif entry_gen.get(event.domain, current) != current:
                n = 1
        out.append(n)
    return out


def _unseal_counts(stream, masked) -> List[int]:
    sealed: Dict[Tuple[int, str, int], bool] = {}
    out = []
    for event in stream:
        n = 0
        if event.kind == "reconfig":
            if event.op in ("create_domain", "clear_domain", "recycle_slot"):
                for key in [key for key in sealed if key[0] == event.domain]:
                    del sealed[key]
            elif event.op == "seal":
                if event.inst >= 0:
                    sealed[(event.domain, "inst", event.inst)] = True
                if event.csr >= 0:
                    if event.read:
                        sealed[(event.domain, "read", event.csr)] = True
                    if event.write:
                        sealed[(event.domain, "write", event.csr)] = True
        elif (event.kind == "check" and event.status == "ok"
              and event.domain != DOMAIN_0):
            if sealed.get((event.domain, "inst", event.inst)):
                n += 1
            if event.csr >= 0:
                if event.read and sealed.get((event.domain, "read",
                                              event.csr)):
                    n += 1
                if (event.write and sealed.get((event.domain, "write",
                                                event.csr))
                        and not (event.csr in masked
                                 and event.old == event.value)):
                    n += 1
        out.append(n)
    return out


def reference_verdict(events, geometry) -> Tuple[Dict[str, int], int]:
    """Counts per contract plus the unwaived total, independently derived."""
    stream = normalize(events)
    masked = set(geometry.get("masked_csrs", ()))
    per_contract = {
        "inst_retirement": _inst_counts(stream),
        "csr_retirement": _csr_counts(stream, masked),
        "gate_only_switches": _gate_counts(stream),
        "trusted_mem_d0": _d0_counts(stream),
        "coherence_after_revoke": _revoke_counts(stream, masked),
        "rollback_atomicity": _rollback_counts(stream),
        "no_stale_generation": _stale_generation_counts(stream),
        "no_unseal": _unseal_counts(stream, masked),
    }
    counts = {name: sum(rows) for name, rows in per_contract.items()}
    armed = False
    unwaived = 0
    for position, event in enumerate(stream):
        if event.kind == "fault" and event.op == "injected":
            armed = True
        if not armed:
            unwaived += sum(rows[position]
                            for rows in per_contract.values())
    return counts, unwaived
