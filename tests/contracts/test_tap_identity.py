"""The tap must be invisible: monitored == unmonitored, fast == slow.

The contract tap sits inside ``PrivilegeCheckUnit.check``/
``execute_gate``, ``TrustedMemory`` and the ``DomainManager`` behind a
``_tap is None`` branch.  This suite runs the gate-stress smoke
workload through all four (fast/slow path x monitored/unmonitored)
corners and requires bit-identical simulated results — instructions,
cycles, cache hit rates, syscalls, faults — with zero contract
violations on the healthy run.  Only wall-clock may differ.
"""

import dataclasses

import pytest

from repro.contracts import ContractMonitor
from repro.core import CONFIG_8E
from repro.kernel import X86Kernel
from repro.workloads import GATE_STRESS
from repro.workloads.generator import x86_user_program

ITERATIONS = 12
MAX_STEPS = 1_000_000


def _run_smoke(fast_path: bool, monitored: bool):
    config = (CONFIG_8E if fast_path
              else dataclasses.replace(CONFIG_8E, fast_path=False))
    profile = dataclasses.replace(GATE_STRESS, outer_iterations=ITERATIONS)
    kernel = X86Kernel("decomposed", config)
    monitor = None
    if monitored:
        monitor = ContractMonitor(seed=0)
        monitor.attach(kernel.system.pcu, kernel.system.manager)
    stats = kernel.run(x86_user_program(profile), max_steps=MAX_STEPS)
    observed = {
        "instructions": stats.instructions,
        "cycles": stats.cycles,
        "hit_rates": kernel.system.pcu.stats.hit_rates(),
        "syscalls": kernel.syscall_count,
        "faults": kernel.fault_count,
    }
    return observed, monitor


@pytest.fixture(scope="module")
def corners():
    return {(fast, monitored): _run_smoke(fast, monitored)
            for fast in (True, False) for monitored in (True, False)}


def test_all_four_corners_bit_identical(corners):
    baseline = corners[(True, False)][0]
    for key, (observed, _) in corners.items():
        assert observed == baseline, (
            "corner fast_path=%s monitored=%s diverged from the "
            "unmonitored fast path" % key)


def test_healthy_run_has_zero_violations(corners):
    for (_, monitored), (_, monitor) in corners.items():
        if not monitored:
            continue
        assert monitor.total_violations == 0, monitor.violations[0].describe()
        assert monitor.events_seen > 0


def test_monitored_runs_saw_the_whole_workload(corners):
    fast = corners[(True, True)][1]
    slow = corners[(False, True)][1]
    # The tap narrates architectural events, not micro-architecture:
    # the fast and slow paths must produce the same trace volume.
    assert fast.events_seen == slow.events_seen


def test_detach_restores_the_untapped_pcu(corners):
    kernel = X86Kernel("decomposed", CONFIG_8E)
    monitor = ContractMonitor(seed=0)
    monitor.attach(kernel.system.pcu, kernel.system.manager)
    monitor.detach()
    assert kernel.system.pcu._tap is None
    assert kernel.system.pcu.trusted_memory._tap is None
    assert kernel.system.manager._tap is None
