"""The committed regression corpus: one known-violating trace per contract.

Each ``corpus/*.json`` file is a minimal hand-written trace that a
specific contract must flag — a frozen reproducer for the class of bug
the contract exists to catch.  If a contract rewrite stops flagging its
corpus trace, these tests fail before any campaign does.
"""

import glob
import json
import os

import pytest

from repro.contracts import CONTRACT_NAMES, TraceEvent, load_trace, replay_trace

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_PATHS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def _load(path):
    meta, events = load_trace(path)
    return meta, events


def test_corpus_covers_every_contract():
    covered = {_load(path)[0]["contract"] for path in CORPUS_PATHS}
    assert covered == set(CONTRACT_NAMES)


@pytest.mark.parametrize("path", CORPUS_PATHS,
                         ids=[os.path.basename(p) for p in CORPUS_PATHS])
class TestCorpusTrace:
    def test_flags_its_contract(self, path):
        meta, events = _load(path)
        monitor = replay_trace(events, geometry=meta["geometry"])
        counts = monitor.counts()
        assert counts[meta["contract"]] >= meta["expect_min_violations"]

    def test_no_unexpected_contract_fires(self, path):
        meta, events = _load(path)
        monitor = replay_trace(events, geometry=meta["geometry"])
        allowed = {meta["contract"]} | set(meta.get("also", ()))
        assert set(monitor.nonzero_counts()) <= allowed

    def test_violations_are_unwaived_without_a_fault(self, path):
        meta, events = _load(path)
        monitor = replay_trace(events, geometry=meta["geometry"])
        assert monitor.unwaived_violations == monitor.total_violations > 0

    def test_prepended_injection_waives_everything(self, path):
        meta, events = _load(path)
        armed = [TraceEvent(kind="fault", op="injected",
                            detail="corpus fault")] + events
        monitor = replay_trace(armed, geometry=meta["geometry"])
        assert monitor.total_violations > 0
        assert monitor.unwaived_violations == 0

    def test_trace_roundtrips_through_event_dicts(self, path):
        meta, events = _load(path)
        with open(path) as handle:
            raw = json.load(handle)["events"]
        assert [TraceEvent.from_dict(entry).to_dict()
                for entry in raw] == [event.to_dict() for event in events]
