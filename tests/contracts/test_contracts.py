"""Direct contract tests: hand-built streams with known verdicts.

Each contract gets a minimal clean stream and a minimal violating
stream; the monitor-level tests pin the stream discipline (transaction
buffering, waiver arming, reproducer context) the drivers rely on.
"""

from repro.contracts import (
    CONTRACT_NAMES,
    ContractMonitor,
    TraceEvent,
    replay_trace,
)

GEOMETRY = {"n_inst_classes": 6, "n_csrs": 4, "masked_csrs": (3,)}


def E(kind, **fields):
    return TraceEvent(kind=kind, **fields)


def replay(*events):
    return replay_trace(list(events), geometry=GEOMETRY, seed=11, campaign=3)


class TestInstRetirement:
    def test_granted_class_is_clean(self):
        monitor = replay(
            E("reconfig", op="create_domain", domain=1),
            E("reconfig", op="allow_inst", domain=1, inst=2),
            E("reconfig", op="sync_domain", domain=1),
            E("check", domain=1, inst=2),
        )
        assert monitor.total_violations == 0

    def test_ungranted_class_violates(self):
        monitor = replay(
            E("reconfig", op="create_domain", domain=1),
            E("reconfig", op="sync_domain", domain=1),
            E("check", domain=1, inst=2),
        )
        assert monitor.counts()["inst_retirement"] == 1

    def test_domain_0_is_exempt(self):
        monitor = replay(E("check", domain=0, inst=5))
        assert monitor.total_violations == 0

    def test_faulted_check_is_not_a_retirement(self):
        monitor = replay(
            E("reconfig", op="sync_domain", domain=1),
            E("check", domain=1, inst=2,
              status="InstructionPrivilegeFault"),
        )
        assert monitor.total_violations == 0


class TestCsrRetirement:
    def test_read_without_grant_violates(self):
        monitor = replay(
            E("reconfig", op="create_domain", domain=1),
            E("reconfig", op="sync_domain", domain=1),
            E("check", domain=1, csr=1, read=True),
        )
        assert monitor.counts()["csr_retirement"] == 1

    def test_masked_write_outside_mask_violates(self):
        monitor = replay(
            E("reconfig", op="create_domain", domain=1),
            E("reconfig", op="set_mask", domain=1, csr=3, bits=0x0F),
            E("reconfig", op="sync_domain", domain=1),
            E("check", domain=1, csr=3, write=True, old=0, value=0xF0),
        )
        assert monitor.counts()["csr_retirement"] == 1

    def test_masked_write_inside_mask_is_clean_without_write_bit(self):
        # The mask rule replaces the write bit for masked CSRs.
        monitor = replay(
            E("reconfig", op="create_domain", domain=1),
            E("reconfig", op="set_mask", domain=1, csr=3, bits=0x0F),
            E("reconfig", op="sync_domain", domain=1),
            E("check", domain=1, csr=3, write=True, old=0, value=0x0A),
        )
        assert monitor.total_violations == 0


class TestGateOnlySwitches:
    def test_registered_gate_to_destination_is_clean(self):
        monitor = replay(
            E("reconfig", op="register_gate", gate=0, dest=1),
            E("gate", op="hccall", gate=0, pre_domain=0, domain=1),
            E("check", domain=1),
        )
        assert monitor.total_violations == 0

    def test_wrong_destination_violates(self):
        monitor = replay(
            E("reconfig", op="register_gate", gate=0, dest=1),
            E("gate", op="hccall", gate=0, pre_domain=0, domain=2),
        )
        assert monitor.counts()["gate_only_switches"] == 1

    def test_unregistered_gate_success_violates(self):
        monitor = replay(
            E("gate", op="hccalls", gate=7, pre_domain=0, domain=1),
        )
        assert monitor.counts()["gate_only_switches"] == 1

    def test_hcrets_into_domain_0_violates(self):
        monitor = replay(
            E("reconfig", op="sync_domain", domain=2),
            E("gate", op="hcrets", gate=-1, pre_domain=2, domain=0),
        )
        assert monitor.counts()["gate_only_switches"] == 1

    def test_faulted_gate_must_not_switch(self):
        monitor = replay(
            E("gate", op="hccall", gate=0, pre_domain=0, domain=1,
              status="GateFault"),
        )
        assert monitor.counts()["gate_only_switches"] == 1

    def test_resync_reports_once_not_a_storm(self):
        monitor = replay(
            E("check", domain=2),  # teleport: one violation
            E("check", domain=2),  # resynced: quiet
            E("check", domain=2),
        )
        assert monitor.counts()["gate_only_switches"] == 1


class TestTrustedMemConfinement:
    def test_software_store_outside_txn_violates(self):
        monitor = replay(
            E("reconfig", op="sync_domain", domain=1),
            E("mem_write", op="sw", domain=1, address=0x10, value=5),
        )
        assert monitor.counts()["trusted_mem_d0"] == 1

    def test_software_store_inside_txn_is_clean(self):
        monitor = replay(
            E("txn", op="begin"),
            E("mem_write", op="sw", domain=0, address=0x10, value=5),
            E("txn", op="commit"),
        )
        assert monitor.total_violations == 0

    def test_hardware_and_scrub_origins_are_exempt(self):
        monitor = replay(
            E("reconfig", op="sync_domain", domain=2),
            E("mem_write", op="hw", domain=2, address=0x10, value=5),
            E("mem_write", op="scrub", domain=2, address=0x18, value=6),
        )
        assert monitor.total_violations == 0


class TestCoherenceAfterRevoke:
    def test_revoked_inst_grant_violates(self):
        monitor = replay(
            E("reconfig", op="create_domain", domain=1),
            E("reconfig", op="allow_inst", domain=1, inst=2),
            E("reconfig", op="sync_domain", domain=1),
            E("reconfig", op="deny_inst", domain=1, inst=2),
            E("check", domain=1, inst=2),
        )
        counts = monitor.counts()
        assert counts["coherence_after_revoke"] == 1
        # the same stale verdict also fails plain retirement
        assert counts["inst_retirement"] == 1

    def test_regrant_clears_the_revocation(self):
        monitor = replay(
            E("reconfig", op="create_domain", domain=1),
            E("reconfig", op="allow_inst", domain=1, inst=2),
            E("reconfig", op="deny_inst", domain=1, inst=2),
            E("reconfig", op="allow_inst", domain=1, inst=2),
            E("reconfig", op="sync_domain", domain=1),
            E("check", domain=1, inst=2),
        )
        assert monitor.total_violations == 0

    def test_revoked_csr_read_violates(self):
        monitor = replay(
            E("reconfig", op="create_domain", domain=1),
            E("reconfig", op="grant_csr", domain=1, csr=0, read=True),
            E("reconfig", op="revoke_csr", domain=1, csr=0, read=True),
            E("reconfig", op="sync_domain", domain=1),
            E("check", domain=1, csr=0, read=True),
        )
        assert monitor.counts()["coherence_after_revoke"] == 1


class TestRollbackAtomicity:
    def test_clean_abort_restores_first_touch(self):
        monitor = replay(
            E("txn", op="begin"),
            E("mem_write", op="sw", domain=0, address=0x20, old=5, value=9),
            E("txn", op="abort", values={0x20: 5}),
        )
        assert monitor.total_violations == 0

    def test_torn_abort_violates(self):
        monitor = replay(
            E("txn", op="begin"),
            E("mem_write", op="sw", domain=0, address=0x20, old=5, value=9),
            E("txn", op="abort", values={0x20: 9}),
        )
        assert monitor.counts()["rollback_atomicity"] == 1

    def test_commit_judges_nothing(self):
        monitor = replay(
            E("txn", op="begin"),
            E("mem_write", op="sw", domain=0, address=0x20, old=5, value=9),
            E("txn", op="commit"),
        )
        assert monitor.total_violations == 0


class TestMonitorDiscipline:
    def test_aborted_txn_discards_buffered_reconfigs(self):
        # allow_inst inside an aborted transaction never happened: the
        # later check must still violate inst retirement.
        monitor = replay(
            E("reconfig", op="create_domain", domain=1),
            E("reconfig", op="sync_domain", domain=1),
            E("txn", op="begin"),
            E("reconfig", op="allow_inst", domain=1, inst=2),
            E("txn", op="abort"),
            E("check", domain=1, inst=2),
        )
        assert monitor.counts()["inst_retirement"] == 1

    def test_committed_txn_delivers_buffered_reconfigs(self):
        monitor = replay(
            E("reconfig", op="create_domain", domain=1),
            E("reconfig", op="sync_domain", domain=1),
            E("txn", op="begin"),
            E("reconfig", op="allow_inst", domain=1, inst=2),
            E("txn", op="commit"),
            E("check", domain=1, inst=2),
        )
        assert monitor.total_violations == 0

    def test_injected_fault_waives_later_violations(self):
        monitor = replay(
            E("fault", op="injected", detail="bitflip hpt[1]"),
            E("reconfig", op="sync_domain", domain=1),
            E("check", domain=1, inst=2),
        )
        assert monitor.total_violations == 1
        assert monitor.unwaived_violations == 0
        assert monitor.violations[0].waived_by == "bitflip hpt[1]"

    def test_violations_carry_reproducer_context(self):
        monitor = replay(
            E("reconfig", op="sync_domain", domain=1),
            E("check", domain=1, inst=2),
        )
        violation = monitor.first_unwaived()
        assert violation is not None
        assert violation.seed == 11
        assert violation.campaign == 3
        assert violation.index == 1
        text = violation.describe()
        assert "seed 11" in text and "campaign 3" in text

    def test_counts_cover_every_contract_in_canonical_order(self):
        monitor = replay()
        assert tuple(monitor.counts()) == CONTRACT_NAMES
        assert all(count == 0 for count in monitor.counts().values())

    def test_waiver_probe_wins_over_armed_detail(self):
        monitor = ContractMonitor(seed=0)
        monitor.configure(GEOMETRY)
        monitor.waiver_probe = lambda: "probe says injector fired"
        monitor.feed(E("reconfig", op="sync_domain", domain=1))
        monitor.feed(E("check", domain=1, inst=2))
        assert monitor.violations[0].waived_by == "probe says injector fired"

    def test_event_roundtrips_through_dict(self):
        event = E("txn", op="abort", values={0x20: 5, 0x28: 7})
        assert TraceEvent.from_dict(event.to_dict()) == event
