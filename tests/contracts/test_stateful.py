"""Stateful cross-check: the contract monitor vs a brute-force reference.

Hypothesis drives random event streams — valid runs, deliberately
violating runs, transactions that commit or abort, injected-fault
arming — and after every rule the full stream is replayed through
:func:`repro.contracts.replay_trace` and through the independent
reference in :mod:`tests.contracts.reference`.  Per-contract counts and
the unwaived total must agree exactly; hypothesis shrinks any mismatch
to a minimal rule sequence.
"""

from dataclasses import replace

from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.contracts import CONTRACT_NAMES, TraceEvent, replay_trace

from .reference import reference_verdict

GEOMETRY = {"n_inst_classes": 6, "n_csrs": 4, "masked_csrs": (3,)}

DOMAIN = st.integers(min_value=0, max_value=3)
INST = st.integers(min_value=-1, max_value=5)
CSR = st.integers(min_value=-1, max_value=3)
GATE = st.integers(min_value=0, max_value=2)
VALUE = st.integers(min_value=0, max_value=255)
ADDRESS = st.sampled_from([0x10, 0x18, 0x20, 0x28])
STATUS = st.sampled_from(["ok", "ok", "ok", "InstructionPrivilegeFault",
                          "RegisterWriteFault"])
ORIGIN = st.sampled_from(["sw", "sw", "hw", "d0", "scrub"])
GATE_OP = st.sampled_from(["hccall", "hccalls", "hcrets"])


class ContractStream(RuleBasedStateMachine):
    """Rules append raw trace events; the invariant cross-checks them."""

    def __init__(self):
        super().__init__()
        self.events = []

    def emit(self, kind, **fields):
        self.events.append(TraceEvent(kind=kind, **fields))

    # -- reconfiguration -----------------------------------------------
    @rule(domain=DOMAIN)
    def create_domain(self, domain):
        self.emit("reconfig", op="create_domain", domain=domain)

    @rule(domain=DOMAIN)
    def clear_domain(self, domain):
        self.emit("reconfig", op="clear_domain", domain=domain)

    @rule(domain=DOMAIN, inst=st.integers(min_value=0, max_value=5))
    def allow_inst(self, domain, inst):
        self.emit("reconfig", op="allow_inst", domain=domain, inst=inst)

    @rule(domain=DOMAIN, inst=st.integers(min_value=0, max_value=5))
    def deny_inst(self, domain, inst):
        self.emit("reconfig", op="deny_inst", domain=domain, inst=inst)

    @rule(domain=DOMAIN, csr=st.integers(min_value=0, max_value=3),
          read=st.booleans(), write=st.booleans())
    def grant_csr(self, domain, csr, read, write):
        self.emit("reconfig", op="grant_csr", domain=domain, csr=csr,
                  read=read, write=write)

    @rule(domain=DOMAIN, csr=st.integers(min_value=0, max_value=3),
          read=st.booleans(), write=st.booleans())
    def revoke_csr(self, domain, csr, read, write):
        self.emit("reconfig", op="revoke_csr", domain=domain, csr=csr,
                  read=read, write=write)

    @rule(domain=DOMAIN, csr=st.integers(min_value=0, max_value=3),
          bits=VALUE)
    def set_mask(self, domain, csr, bits):
        self.emit("reconfig", op="set_mask", domain=domain, csr=csr,
                  bits=bits)

    @rule(gate=GATE, dest=DOMAIN)
    def register_gate(self, gate, dest):
        self.emit("reconfig", op="register_gate", gate=gate, dest=dest)

    @rule(gate=GATE)
    def unregister_gate(self, gate):
        self.emit("reconfig", op="unregister_gate", gate=gate)

    @rule(domain=DOMAIN)
    def sync_domain(self, domain):
        self.emit("reconfig", op="sync_domain", domain=domain)

    @rule(domain=DOMAIN, bits=st.integers(min_value=0, max_value=3),
          dest=st.integers(min_value=100, max_value=103))
    def bind_slot(self, domain, bits, dest):
        self.emit("reconfig", op="bind_slot", domain=domain, bits=bits,
                  dest=dest)

    @rule(domain=DOMAIN, bits=st.integers(min_value=0, max_value=3),
          dest=st.integers(min_value=100, max_value=103))
    def recycle_slot(self, domain, bits, dest):
        self.emit("reconfig", op="recycle_slot", domain=domain, bits=bits,
                  dest=dest)

    @rule(domain=DOMAIN, inst=INST, csr=CSR,
          read=st.booleans(), write=st.booleans())
    def seal(self, domain, inst, csr, read, write):
        self.emit("reconfig", op="seal", domain=domain, inst=inst,
                  csr=csr, read=read, write=write)

    # -- observable events (valid and violating alike) -------------------
    @rule(domain=DOMAIN, status=STATUS, inst=INST, csr=CSR,
          read=st.booleans(), write=st.booleans(), value=VALUE, old=VALUE)
    def check(self, domain, status, inst, csr, read, write, value, old):
        self.emit("check", domain=domain, status=status, inst=inst,
                  csr=csr, read=read, write=write, value=value, old=old)

    @rule(op=GATE_OP, gate=GATE, pre_domain=DOMAIN, domain=DOMAIN,
          status=st.sampled_from(["ok", "ok", "GateFault"]))
    def gate(self, op, gate, pre_domain, domain, status):
        self.emit("gate", op=op, gate=gate, pre_domain=pre_domain,
                  domain=domain, status=status)

    @rule(origin=ORIGIN, domain=st.integers(min_value=-1, max_value=3),
          address=ADDRESS, value=VALUE, old=VALUE)
    def mem_write(self, origin, domain, address, value, old):
        self.emit("mem_write", op=origin, domain=domain, address=address,
                  value=value, old=old)

    @rule()
    def txn_begin(self):
        self.emit("txn", op="begin")

    @rule()
    def txn_commit(self):
        self.emit("txn", op="commit")

    @rule(values=st.dictionaries(ADDRESS, VALUE, max_size=3))
    def txn_abort(self, values):
        self.emit("txn", op="abort", values=values)

    @rule()
    def inject_fault(self):
        self.emit("fault", op="injected", detail="stateful-test fault")

    # -- the cross-check -------------------------------------------------
    @invariant()
    def monitor_matches_reference(self):
        monitor = replay_trace([replace(event) for event in self.events],
                               geometry=GEOMETRY)
        counts, unwaived = reference_verdict(self.events, GEOMETRY)
        assert monitor.counts() == counts, (
            "per-contract counts diverged: monitor=%r reference=%r"
            % (monitor.counts(), counts))
        assert monitor.unwaived_violations == unwaived, (
            "unwaived totals diverged: monitor=%d reference=%d"
            % (monitor.unwaived_violations, unwaived))
        assert set(monitor.counts()) == set(CONTRACT_NAMES)


TestContractStream = ContractStream.TestCase
TestContractStream.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None)
