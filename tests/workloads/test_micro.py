"""The Table-4 latency microbenchmark rigs."""

import pytest

from repro.workloads.micro import (
    LITERATURE_ROWS,
    instruction_latencies,
    measure_riscv_gates,
    measure_riscv_supervisor_call,
    measure_riscv_syscall,
    measure_x86_gates,
)


class TestInstructionLatencies:
    @pytest.fixture(scope="class")
    def latencies(self):
        return instruction_latencies()

    def test_riscv_matches_table4(self, latencies):
        assert latencies["riscv"]["hccall"] == 5
        assert latencies["riscv"]["hccalls"] == 12
        assert latencies["riscv"]["hcrets"] == 12

    def test_x86_matches_table4(self, latencies):
        assert latencies["x86"]["hccall"] == pytest.approx(34, abs=1)
        assert latencies["x86"]["hccalls"] == pytest.approx(52, abs=1)
        assert latencies["x86"]["hcrets"] == pytest.approx(44, abs=1)


class TestMeasuredGates:
    @pytest.fixture(scope="class")
    def riscv(self):
        return measure_riscv_gates(iterations=600)

    @pytest.fixture(scope="class")
    def x86(self):
        return measure_x86_gates(iterations=600)

    def test_riscv_hccall_loop(self, riscv):
        # Differencing removes the 1-cycle nop it replaces: 5 - 1 = 4.
        assert riscv["hccall"] == pytest.approx(4, abs=0.5)

    def test_riscv_pair_under_paper_value(self, riscv):
        assert 20 < riscv["hccalls+hcrets"] < 32

    def test_x86_hccall_loop(self, x86):
        assert x86["hccall"] == pytest.approx(34, abs=2)

    def test_x86_forwarded_pair(self, x86):
        assert x86["xdomain_hccalls_hcrets"] == pytest.approx(74, abs=3)

    def test_all_gates_beat_literature_rows(self, riscv, x86):
        worst = max(riscv["hccalls+hcrets"], x86["xdomain_hccalls_hcrets"])
        assert worst < min(LITERATURE_ROWS.values())


class TestCalls:
    def test_syscall_ordering(self):
        plain = measure_riscv_syscall(iterations=150)
        pti = measure_riscv_syscall(pti=True, iterations=150)
        supervisor = measure_riscv_supervisor_call(iterations=150)
        assert supervisor < plain < pti
        assert pti - plain > 10  # PTI's SATP writes + fences are visible

    def test_syscall_measure_deterministic(self):
        assert measure_riscv_syscall(iterations=100) == measure_riscv_syscall(iterations=100)
