"""Workload generators and runners."""

import pytest

from repro.kernel import RiscvKernel, X86Kernel
from repro.workloads import (
    APPLICATIONS,
    GATE_STRESS,
    LMBENCH_SUITE,
    MBEDTLS,
    SQLITE,
    benchmark_by_name,
    normalized_time,
    riscv_loop_source,
    riscv_user_program,
    riscv_user_source,
    run_riscv,
    run_riscv_app,
    run_x86,
    run_x86_app,
    x86_user_program,
    x86_user_source,
)


class TestProfiles:
    def test_application_set_matches_figures(self):
        names = [p.name for p in APPLICATIONS]
        assert names == ["SQLite", "Mbedtls", "gzip", "tar"]

    def test_mix_weights_sum_to_one(self):
        for profile in APPLICATIONS + [GATE_STRESS]:
            assert sum(profile.mix.values()) == pytest.approx(1.0)

    def test_instruction_budget_is_laptop_sized(self):
        for profile in APPLICATIONS:
            assert profile.approx_instructions < 2_000_000


class TestGeneratorDeterminism:
    def test_riscv_source_deterministic(self):
        assert riscv_user_source(SQLITE) == riscv_user_source(SQLITE)

    def test_x86_source_deterministic(self):
        assert x86_user_source(SQLITE) == x86_user_source(SQLITE)

    def test_different_seeds_differ(self):
        import dataclasses

        other = dataclasses.replace(SQLITE, seed=99)
        assert riscv_user_source(SQLITE) != riscv_user_source(other)

    def test_programs_assemble(self):
        assert riscv_user_program(MBEDTLS).size > 0
        assert x86_user_program(MBEDTLS).size > 0


class TestAppRunners:
    def test_riscv_app_runs_clean(self):
        result = run_riscv_app(MBEDTLS, "decomposed")
        assert result.valid
        assert result.syscalls == MBEDTLS.outer_iterations + 1  # + exit
        assert result.cycles > 0

    def test_x86_app_runs_clean(self):
        result = run_x86_app(MBEDTLS, "decomposed")
        assert result.valid
        assert result.cycles > 0

    def test_identical_streams_native_vs_decomposed(self):
        """Same program, same work: the decomposed run adds only the
        boot gate (2 instructions) plus gate instructions replacing
        call/ret pairs one-for-one."""
        native = run_riscv_app(MBEDTLS, "native")
        decomposed = run_riscv_app(MBEDTLS, "decomposed")
        assert abs(native.instructions - decomposed.instructions) <= 4

    def test_normalized_time(self):
        native = run_riscv_app(MBEDTLS, "native")
        decomposed = run_riscv_app(MBEDTLS, "decomposed")
        ratio = normalized_time(decomposed, native)
        assert 0.99 < ratio < 1.02  # the paper's <1% band


class TestLmbench:
    def test_suite_covers_core_operations(self):
        names = {b.name for b in LMBENCH_SUITE}
        assert {"lat_null", "lat_read", "lat_write", "lat_stat",
                "lat_sig_install", "lat_mmap", "lat_ctx"} <= names

    def test_lookup_by_name(self):
        assert benchmark_by_name("lat_null").name == "lat_null"
        with pytest.raises(KeyError):
            benchmark_by_name("lat_nothing")

    def test_null_call_runs_on_both_archs(self):
        bench = benchmark_by_name("lat_null")
        riscv_cycles = run_riscv(bench, RiscvKernel("native"))
        x86_cycles = run_x86(bench, X86Kernel("native"))
        assert riscv_cycles > 0 and x86_cycles > 0

    def test_loop_sources_contain_expected_syscalls(self):
        bench = benchmark_by_name("lat_openclose")
        source = riscv_loop_source(bench)
        assert "li a7, 6" in source and "li a7, 7" in source

    def test_mmap_bench_gates_on_decomposed(self):
        bench = benchmark_by_name("lat_mmap")
        kernel = RiscvKernel("decomposed")
        run_riscv(bench, kernel)
        assert kernel.system.pcu.stats.gate_calls_extended >= bench.iterations
