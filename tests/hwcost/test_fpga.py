"""The Table 6 FPGA resource model."""

import pytest

from repro.core import CONFIG_16E, CONFIG_8E, CONFIG_8EN, PcuConfig
from repro.hwcost import estimate, pcu_cost, rocket_baseline, table6_rows


class TestCalibration:
    """The model must land on the paper's Table 6 percentages."""

    @pytest.mark.parametrize("config,lut_pct,ff_pct", [
        (CONFIG_16E, 4.47, 7.20),
        (CONFIG_8E, 3.03, 4.34),
        (CONFIG_8EN, 2.21, 2.95),
    ])
    def test_overhead_percentages(self, config, lut_pct, ff_pct):
        utilization = estimate(config)
        overhead = utilization.overhead_vs(rocket_baseline())
        assert overhead["lut_logic"] * 100 == pytest.approx(lut_pct, abs=0.05)
        assert overhead["flip_flops"] * 100 == pytest.approx(ff_pct, abs=0.05)

    @pytest.mark.parametrize("config,lut,ff", [
        (CONFIG_16E, 53421, 40280),
        (CONFIG_8E, 52685, 39208),
        (CONFIG_8EN, 52267, 38683),
    ])
    def test_absolute_utilization(self, config, lut, ff):
        utilization = estimate(config)
        assert utilization.lut_logic == pytest.approx(lut, abs=5)
        assert utilization.flip_flops == pytest.approx(ff, abs=5)

    def test_no_bram_or_dsp_added(self):
        base = rocket_baseline()
        for config in (CONFIG_16E, CONFIG_8E, CONFIG_8EN):
            utilization = estimate(config)
            assert utilization.ramb36 == base.ramb36
            assert utilization.ramb18 == base.ramb18
            assert utilization.dsp48e1 == base.dsp48e1
            assert utilization.lut_memory == base.lut_memory


class TestModelStructure:
    def test_cost_monotone_in_entries(self):
        small = pcu_cost(PcuConfig(hpt_cache_entries=4, sgt_cache_entries=4))
        large = pcu_cost(PcuConfig(hpt_cache_entries=32, sgt_cache_entries=32))
        assert large["lut_logic"] > small["lut_logic"]
        assert large["flip_flops"] > small["flip_flops"]

    def test_dropping_sgt_cache_saves_area(self):
        with_sgt = pcu_cost(CONFIG_8E)
        without = pcu_cost(CONFIG_8EN)
        assert without["lut_logic"] < with_sgt["lut_logic"]
        assert without["flip_flops"] < with_sgt["flip_flops"]

    def test_fixed_cost_floor(self):
        tiny = pcu_cost(PcuConfig(hpt_cache_entries=1, sgt_cache_entries=0))
        from repro.hwcost import FIXED_FF, FIXED_LUT

        assert tiny["lut_logic"] >= FIXED_LUT
        assert tiny["flip_flops"] >= FIXED_FF

    def test_table6_rows_complete(self):
        rows = table6_rows()
        assert [r["name"] for r in rows] == ["Rocket Core", "16E.", "8E.", "8E.N"]
        assert rows[0]["lut_pct"] == 0.0
        assert rows[1]["lut_pct"] > rows[2]["lut_pct"] > rows[3]["lut_pct"]
