"""Shard planning: layout determinism, coverage, fingerprints."""

from repro.orchestrator import (
    ShardPlan,
    ShardResult,
    ShardSpec,
    plan_conformance_shards,
    plan_fault_shards,
)
from repro.orchestrator.shards import FAULT_SHARDS_PER_UNIT, _fault_chunk


class TestFaultPlanning:
    def test_layout_is_pure_function_of_campaign_params(self):
        a = plan_fault_shards(["riscv", "x86"], ["stress"], 0, 500, 20, 200)
        b = plan_fault_shards(["riscv", "x86"], ["stress"], 0, 500, 20, 200)
        assert [s.shard_id for s in a.shards] == [s.shard_id for s in b.shards]
        assert [s.params for s in a.shards] == [s.params for s in b.shards]
        assert a.fingerprint() == b.fingerprint()

    def test_campaign_ranges_tile_the_matrix_exactly(self):
        for n_campaigns in (1, 7, 8, 9, 50, 100):
            plan = plan_fault_shards(["riscv"], ["stress"], 0, 100,
                                     n_campaigns, 200)
            covered = []
            for shard in plan.shards:
                lo = shard.params["campaign_lo"]
                hi = shard.params["campaign_hi"]
                assert lo < hi
                covered.extend(range(lo, hi))
            assert covered == list(range(n_campaigns))
            assert len(plan.shards) <= FAULT_SHARDS_PER_UNIT

    def test_chunk_depends_only_on_matrix_size(self):
        # The worker count must never influence the layout; the planner
        # does not even accept one.
        assert _fault_chunk(8) == 1
        assert _fault_chunk(9) == 2
        assert _fault_chunk(100) == 13

    def test_fingerprint_tracks_campaign_parameters(self):
        base = plan_fault_shards(["riscv"], ["stress"], 0, 500, 20, 200)
        for other in (
            plan_fault_shards(["riscv"], ["stress"], 1, 500, 20, 200),
            plan_fault_shards(["riscv"], ["stress"], 0, 501, 20, 200),
            plan_fault_shards(["riscv"], ["stress"], 0, 500, 21, 200),
            plan_fault_shards(["riscv"], ["draco"], 0, 500, 20, 200),
            plan_fault_shards(["riscv"], ["stress"], 0, 500, 20, 200,
                              faults_per_campaign=2),
        ):
            assert other.fingerprint() != base.fingerprint()

    def test_weight_accounts_every_event(self):
        plan = plan_fault_shards(["riscv", "x86"], ["stress", "draco"],
                                 0, 500, 20, 200)
        assert plan.total_weight == 2 * 2 * 20 * 500


class TestConformancePlanning:
    def test_one_shard_per_backend_config_pair(self):
        plan = plan_conformance_shards(["riscv", "x86"], ["stress", "draco"],
                                       7, 1000)
        assert len(plan.shards) == 4
        pairs = {(s.params["backend"], s.params["config"])
                 for s in plan.shards}
        assert pairs == {("riscv", "stress"), ("riscv", "draco"),
                         ("x86", "stress"), ("x86", "draco")}

    def test_layout_deterministic(self):
        a = plan_conformance_shards(["riscv"], ["stress"], 0, 100)
        b = plan_conformance_shards(["riscv"], ["stress"], 0, 100)
        assert a.fingerprint() == b.fingerprint()


class TestSerialization:
    def test_spec_roundtrip(self):
        spec = ShardSpec("s1", "faults", {"seed": 3}, weight=10,
                         sabotage={"kind": "sigkill", "attempts": 1})
        assert ShardSpec.from_dict(spec.to_dict()) == spec

    def test_result_roundtrip(self):
        result = ShardResult("s1", "ok", {"results": []}, elapsed_s=1.5,
                             events_run=100, worker_pid=42, max_rss_kb=9000,
                             attempt=2, failures=["worker crashed"])
        clone = ShardResult.from_dict(result.to_dict())
        assert clone.to_dict() == result.to_dict()
        assert clone.cached is False  # cached is run-local, not serialized
