"""Supervisor failure paths and serial/parallel report equivalence.

These tests exercise the orchestrator end to end over real (small)
fault and conformance campaigns, using the worker sabotage hook to
reproduce the failure modes deterministically: a worker SIGKILLed
mid-shard, a hung worker hitting the shard timeout, a poison shard
exhausting its retries, and an interrupted run resumed from its
checkpoints.  The invariant under test throughout: whatever the
workers' fate, a completed run's merged report is byte-identical to
the serial path's.
"""

import json
import os

import pytest

from repro.faults import run_campaigns, write_report
from repro.orchestrator import (
    RunJournal,
    orchestrate_conformance,
    orchestrate_faults,
)

BACKENDS = ["riscv"]
CONFIGS = ["stress"]
SEED = 0
N_EVENTS = 120
N_CAMPAIGNS = 6          # < FAULT_SHARDS_PER_UNIT -> one campaign per shard
SCRUB_INTERVAL = 64

#: The shard the sabotage tests poison (campaign 2 of 6).
VICTIM = "faults-riscv-stress-c0002-c0003"


def run_parallel(tmp_path, **kwargs):
    """orchestrate_faults over the shared tiny matrix."""
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("run_dir", str(tmp_path / "run"))
    return orchestrate_faults(
        BACKENDS, CONFIGS, SEED, N_EVENTS, N_CAMPAIGNS,
        scrub_interval=SCRUB_INTERVAL, **kwargs)


def report_bytes(matrices, path) -> bytes:
    write_report(matrices, str(path))
    with open(path, "rb") as handle:
        return handle.read()


@pytest.fixture(scope="module")
def serial_report(tmp_path_factory):
    """The ground truth: the serial runner over the same matrix."""
    matrices = [run_campaigns(backend, SEED, N_EVENTS, N_CAMPAIGNS,
                              config=config, scrub_interval=SCRUB_INTERVAL)
                for backend in BACKENDS for config in CONFIGS]
    path = tmp_path_factory.mktemp("serial") / "report.json"
    return report_bytes(matrices, path)


class TestReportEquivalence:
    def test_jobs_n_matches_jobs_1_byte_for_byte(self, tmp_path,
                                                 serial_report):
        matrices, run, _ = run_parallel(tmp_path, jobs=3)
        assert run.complete
        assert report_bytes(matrices, tmp_path / "parallel.json") \
            == serial_report

    def test_conformance_payloads_match_serial_summaries(self, tmp_path):
        from repro.conformance.runner import fuzz_backend

        serial = []
        for backend in ("riscv", "x86"):
            result = fuzz_backend(backend, SEED, 400, config="stress",
                                  dump_dir=None)
            summary = result.summary()
            summary["events_run"] = result.events
            serial.append(summary)
        payloads, run, _ = orchestrate_conformance(
            ["riscv", "x86"], ["stress"], SEED, 400, jobs=2, dump_dir=None,
            run_dir=str(tmp_path / "run"))
        assert run.complete
        assert payloads == serial


class TestFailurePaths:
    def test_sigkilled_worker_is_retried_without_failing_the_campaign(
            self, tmp_path, serial_report):
        matrices, run, run_dir = run_parallel(
            tmp_path,
            sabotage={VICTIM: {"kind": "sigkill", "attempts": 1}})
        # The campaign survived the kill and lost nothing.
        assert run.complete
        assert report_bytes(matrices, tmp_path / "report.json") \
            == serial_report
        # The kill was seen, retried on a fresh worker, and journaled.
        assert run.metrics.crashes == 1
        assert run.metrics.retries == 1
        victim = run.by_id()[VICTIM]
        assert victim.attempt == 1
        assert any("crashed" in failure for failure in victim.failures)
        events = RunJournal(run_dir).read_events()
        assert any(e["event"] == "failure" and e["shard"] == VICTIM
                   and e["retried"] for e in events)

    def test_hung_worker_hits_shard_timeout_and_is_retried(
            self, tmp_path, serial_report):
        matrices, run, _ = run_parallel(
            tmp_path,
            shard_timeout=10.0,
            sabotage={VICTIM: {"kind": "hang", "seconds": 600,
                               "attempts": 1}})
        assert run.complete
        assert run.metrics.timeouts == 1
        assert run.metrics.retries == 1
        victim = run.by_id()[VICTIM]
        assert any("timeout" in failure for failure in victim.failures)
        assert report_bytes(matrices, tmp_path / "report.json") \
            == serial_report

    def test_poison_shard_is_quarantined_and_the_run_continues(
            self, tmp_path):
        matrices, run, run_dir = run_parallel(
            tmp_path,
            max_retries=1,
            sabotage={VICTIM: {"kind": "exception", "attempts": 99}})
        # The poison shard is recorded, not fatal.
        assert not run.complete
        assert [spec.shard_id for spec in run.quarantined] == [VICTIM]
        assert run.metrics.quarantined == 1
        entries = RunJournal(run_dir).read_quarantine()
        assert entries[0]["shard_id"] == VICTIM
        # The offending seed range is recorded for isolated replay.
        assert entries[0]["params"]["campaign_lo"] == 2
        assert entries[0]["params"]["seed"] == SEED
        assert len(entries[0]["failures"]) == 2  # initial + 1 retry
        # Every other campaign still produced its result.
        (matrix,) = matrices
        assert [r.campaign for r in matrix.results] == [0, 1, 3, 4, 5]


class TestResume:
    def test_resume_after_interrupt_produces_identical_report(
            self, tmp_path, serial_report):
        run_dir = str(tmp_path / "run")
        done = []

        def interrupt_after_two(result):
            done.append(result.shard_id)
            if len(done) == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_parallel(tmp_path, jobs=1, run_dir=run_dir,
                         on_shard_done=interrupt_after_two)
        # The interrupted run left its completed shards checkpointed.
        checkpointed = os.listdir(os.path.join(run_dir, "shards"))
        assert len(checkpointed) >= 2

        matrices, run, _ = run_parallel(tmp_path, run_dir=run_dir,
                                        resume=True)
        assert run.complete
        assert run.metrics.shards_resumed >= 2
        assert run.metrics.shards_done \
            == N_CAMPAIGNS - run.metrics.shards_resumed
        assert report_bytes(matrices, tmp_path / "report.json") \
            == serial_report

    def test_resume_rejects_a_different_campaign(self, tmp_path):
        run_dir = str(tmp_path / "run")
        run_parallel(tmp_path, run_dir=run_dir)
        with pytest.raises(ValueError, match="different campaign"):
            orchestrate_faults(
                BACKENDS, CONFIGS, SEED + 1, N_EVENTS, N_CAMPAIGNS,
                scrub_interval=SCRUB_INTERVAL, jobs=2, run_dir=run_dir,
                resume=True)

    def test_fresh_run_clears_stale_checkpoints(self, tmp_path):
        run_dir = str(tmp_path / "run")
        _, first, _ = run_parallel(tmp_path, run_dir=run_dir)
        assert first.metrics.shards_resumed == 0
        # Without --resume the directory is rebound and re-run fresh.
        _, second, _ = run_parallel(tmp_path, run_dir=run_dir)
        assert second.metrics.shards_resumed == 0
        assert second.metrics.shards_done == N_CAMPAIGNS


class TestStatusSurface:
    def test_metrics_and_manifest_are_written_for_status_view(
            self, tmp_path):
        _, run, run_dir = run_parallel(tmp_path)
        journal = RunJournal(run_dir)
        manifest = journal.read_manifest()
        assert manifest["kind"] == "faults"
        assert len(manifest["shards"]) == N_CAMPAIGNS
        metrics = journal.read_metrics()
        assert metrics["shards_done"] == N_CAMPAIGNS
        assert metrics["events_total"] == run.metrics.events_total
        assert metrics["peak_rss_kb"] > 0
        # Worker accounting covers every shard exactly once.
        assert sum(w["shards"] for w in metrics["workers"].values()) \
            == N_CAMPAIGNS
