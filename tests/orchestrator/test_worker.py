"""Worker-side unit behaviour (the bits not covered by supervisor runs)."""

import sys
import types

from repro.orchestrator import worker


class TestMaxRssKb:
    """ru_maxrss is KiB on Linux but bytes on macOS; the platform — not
    the magnitude — must pick the conversion."""

    def _fake_resource(self, ru_maxrss):
        fake = types.SimpleNamespace(
            RUSAGE_SELF=0,
            getrusage=lambda who: types.SimpleNamespace(ru_maxrss=ru_maxrss),
        )
        return fake

    def test_linux_reports_kib_unchanged(self, monkeypatch):
        monkeypatch.setattr(worker, "resource", self._fake_resource(2048))
        monkeypatch.setattr(sys, "platform", "linux")
        assert worker._max_rss_kb() == 2048

    def test_darwin_converts_bytes_to_kib(self, monkeypatch):
        monkeypatch.setattr(worker, "resource",
                            self._fake_resource(2048 * 1024))
        monkeypatch.setattr(sys, "platform", "darwin")
        assert worker._max_rss_kb() == 2048

    def test_darwin_small_peak_not_misread_as_kib(self, monkeypatch):
        # The old magnitude heuristic left sub-GiB Darwin peaks (byte
        # counts that "look like" KiB) unconverted — 1024x too large.
        monkeypatch.setattr(worker, "resource",
                            self._fake_resource(300 * 1024 * 1024))
        monkeypatch.setattr(sys, "platform", "darwin")
        assert worker._max_rss_kb() == 300 * 1024

    def test_missing_resource_module_degrades_to_zero(self, monkeypatch):
        monkeypatch.setattr(worker, "resource", None)
        assert worker._max_rss_kb() == 0
