"""Tables, normalization, experiment reports."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    Experiment,
    NormalizedResult,
    format_normalized,
    format_percent,
    geometric_mean,
    mean,
    render_table,
    summarize,
)


class TestTables:
    def test_render_alignment(self):
        text = render_table(("a", "bb"), [("xxx", 1), ("y", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("a  ")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_floats_formatted(self):
        text = render_table(("v",), [(1.23456,)])
        assert "1.23" in text

    def test_format_percent(self):
        assert format_percent(0.0123) == "+1.23%"
        assert format_percent(-0.005) == "-0.50%"
        assert format_percent(0.5, signed=False) == "50.00%"

    def test_format_normalized(self):
        assert format_normalized(1.0123).startswith("1.0123")
        assert "+1.23%" in format_normalized(1.0123)


class TestNormalize:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([0.0, 1.0])

    def test_normalized_result(self):
        result = NormalizedResult("x", baseline_cycles=100, protected_cycles=101)
        assert result.normalized == pytest.approx(1.01)
        assert result.overhead == pytest.approx(0.01)

    def test_summarize(self):
        results = [
            NormalizedResult("a", 100, 101),
            NormalizedResult("b", 100, 99),
        ]
        summary = summarize(results)
        assert summary["max_overhead"] == pytest.approx(0.01)
        assert summary["min_overhead"] == pytest.approx(-0.01)
        assert summary["mean_normalized"] == pytest.approx(1.0)

    @given(st.lists(st.floats(min_value=0.5, max_value=2.0), min_size=1, max_size=20))
    def test_geomean_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


class TestExperimentReport:
    def test_render_contains_rows_and_criteria(self):
        experiment = Experiment("Table 9", "An example")
        experiment.add("latency", 5, 5.1, unit="cycles", note="close")
        experiment.shape_criteria.append("must be tiny")
        text = experiment.render()
        assert "Table 9" in text
        assert "latency" in text
        assert "must be tiny" in text
        assert "cycles" in text
