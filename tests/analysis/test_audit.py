"""The domain-configuration auditor."""

import pytest

from repro.analysis import CRITICAL, INFO, WARNING, audit
from repro.kernel import RiscvKernel, X86Kernel

# Reuse the synthetic ISA fixtures.
from tests.core.conftest import isa_map, manager, pcu, trusted_memory  # noqa: F401


class TestFindings:
    def test_clean_config_is_clean(self, manager):
        domain = manager.create_domain("vm")
        manager.allow_instructions(domain.domain_id, ["alu", "csr"])
        manager.grant_register(domain.domain_id, "vbase", write=True)
        manager.register_gate(0x1000, 0x2000, domain.domain_id)
        report = audit(manager)
        assert report.clean

    def test_write_overlap_flagged(self, manager):
        a = manager.create_domain("a")
        b = manager.create_domain("b")
        manager.grant_register(a.domain_id, "vbase", write=True)
        manager.grant_register(b.domain_id, "vbase", write=True)
        report = audit(manager)
        overlaps = [f for f in report.warnings if f.code == "W-OVERLAP"]
        assert len(overlaps) == 1
        assert "vbase" in overlaps[0].subject

    def test_all_classes_is_critical(self, manager):
        domain = manager.create_domain("god")
        manager.allow_all_instructions(domain.domain_id)
        report = audit(manager)
        assert any(f.code == "C-ALLCLASSES" for f in report.critical)
        assert not report.clean

    def test_unreachable_domain_noted(self, manager):
        manager.create_domain("island")
        report = audit(manager)
        assert any(
            f.code == "I-UNREACHABLE" and f.subject == "island"
            for f in report.by_severity(INFO)
        )

    def test_duplicate_gate_site_is_critical(self, manager):
        domain = manager.create_domain("vm")
        manager.register_gate(0x1000, 0x2000, domain.domain_id)
        manager.register_gate(0x1000, 0x3000, domain.domain_id)
        report = audit(manager)
        assert any(f.code == "C-DUPSITE" for f in report.critical)

    def test_domain0_gate_warned(self, manager):
        manager.register_gate(0x1000, 0x2000, 0)
        report = audit(manager)
        assert any(f.code == "W-D0GATE" for f in report.warnings)

    def test_full_mask_noted(self, manager):
        domain = manager.create_domain("vm")
        manager.grant_register(domain.domain_id, "ctrl", write=True)  # all bits
        report = audit(manager)
        assert any(f.code == "I-FULLMASK" for f in report.by_severity(INFO))

    def test_render_mentions_each_finding(self, manager):
        domain = manager.create_domain("god")
        manager.allow_all_instructions(domain.domain_id)
        text = audit(manager).render()
        assert "C-ALLCLASSES" in text and "god" in text


class TestRealKernels:
    def test_decomposed_kernels_have_no_criticals(self):
        """The shipped decompositions must pass their own audit."""
        for kernel in (RiscvKernel("decomposed"), X86Kernel("decomposed")):
            report = audit(kernel.system.manager)
            assert report.clean, report.render()

    def test_x86_overlap_inventory_is_intentional(self):
        """Only expected co-writers may appear: monitor + vm share CR3
        by design (the monitor is an alternative mediation path), and
        CR0 is *bit-partitioned* (fpu: TS/NE, monitor: WP) — the
        bit-aware check must downgrade it to info."""
        report = audit(X86Kernel("decomposed").system.manager)
        overlap_subjects = {
            f.subject for f in report.warnings if f.code == "W-OVERLAP"
        }
        assert overlap_subjects == {"cr3"}
        partitioned = {
            f.subject for f in report.findings if f.code == "I-BITPARTITION"
        }
        assert "cr0" in partitioned

    def test_riscv_overlap_inventory_is_intentional(self):
        """sscratch/scounteren co-writes are the trap-entry footprint;
        sstatus is bit-partitioned (kernel: SPP/SPIE/SIE, ctx: FS)."""
        report = audit(RiscvKernel("decomposed").system.manager)
        overlap_subjects = {
            f.subject for f in report.warnings if f.code == "W-OVERLAP"
        }
        assert overlap_subjects <= {"sscratch", "scounteren"}
        partitioned = {
            f.subject for f in report.findings if f.code == "I-BITPARTITION"
        }
        assert "sstatus" in partitioned

    def test_bit_partitioned_writers_not_warned(self, manager):
        a = manager.create_domain("a")
        b = manager.create_domain("b")
        manager.grant_register_bits(a.domain_id, "ctrl", 0b0011)
        manager.grant_register_bits(b.domain_id, "ctrl", 0b1100)
        report = audit(manager)
        assert not any(f.code == "W-OVERLAP" for f in report.findings)
        assert any(f.code == "I-BITPARTITION" for f in report.findings)

    def test_overlapping_bit_masks_still_warned(self, manager):
        a = manager.create_domain("a")
        b = manager.create_domain("b")
        manager.grant_register_bits(a.domain_id, "ctrl", 0b0110)
        manager.grant_register_bits(b.domain_id, "ctrl", 0b1100)
        report = audit(manager)
        assert any(f.code == "W-OVERLAP" for f in report.warnings)
