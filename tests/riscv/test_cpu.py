"""The RV64 functional CPU: semantics, traps, privilege, ISA-Grid."""

import pytest

from repro.core import GateFault
from repro.riscv import (
    CAUSE_ECALL_U,
    CAUSE_ILLEGAL_INSTRUCTION,
    CAUSE_ISA_GRID_FAULT,
    CSR_ADDRESS,
    KERNEL_BASE,
    PRIV_S,
    PRIV_U,
    CpuPanic,
    assemble,
    build_riscv_system,
)


def run_program(source, *, with_isagrid=False, max_steps=100_000, setup=None):
    system = build_riscv_system(with_isagrid=with_isagrid)
    if with_isagrid and setup:
        setup(system)
    elif with_isagrid:
        domain = system.manager.create_domain("all")
        system.manager.allow_all_instructions(domain.domain_id)
    program = assemble(source, base=KERNEL_BASE)
    system.load(program)
    system.run(program.symbol("entry") if "entry" in program.symbols else KERNEL_BASE,
               max_steps=max_steps)
    return system


class TestAluSemantics:
    def test_arithmetic(self):
        system = run_program("""
        entry:
            li a0, 100
            li a1, 7
            add a2, a0, a1
            sub a3, a0, a1
            mul a4, a0, a1
            div a5, a0, a1
            rem a6, a0, a1
            halt
        """)
        regs = system.cpu.regs
        assert regs[12] == 107
        assert regs[13] == 93
        assert regs[14] == 700
        assert regs[15] == 14
        assert regs[16] == 2

    def test_wraparound_64bit(self):
        system = run_program("""
        entry:
            li a0, -1
            li a1, 1
            add a2, a0, a1
            halt
        """)
        assert system.cpu.regs[12] == 0

    def test_signed_division_truncates_toward_zero(self):
        system = run_program("""
        entry:
            li a0, -7
            li a1, 2
            div a2, a0, a1
            rem a3, a0, a1
            halt
        """)
        assert system.cpu.regs[12] == (-3) & (1 << 64) - 1
        assert system.cpu.regs[13] == (-1) & (1 << 64) - 1

    def test_division_by_zero(self):
        system = run_program("""
        entry:
            li a0, 5
            li a1, 0
            div a2, a0, a1
            divu a3, a0, a1
            rem a4, a0, a1
            halt
        """)
        assert system.cpu.regs[12] == (1 << 64) - 1  # -1
        assert system.cpu.regs[13] == (1 << 64) - 1
        assert system.cpu.regs[14] == 5

    def test_shifts(self):
        system = run_program("""
        entry:
            li a0, -8
            srai a1, a0, 1
            srli a2, a0, 60
            slli a3, a0, 1
            halt
        """)
        assert system.cpu.regs[11] == (-4) & (1 << 64) - 1
        assert system.cpu.regs[12] == 0xF
        assert system.cpu.regs[13] == (-16) & (1 << 64) - 1

    def test_comparisons(self):
        system = run_program("""
        entry:
            li a0, -1
            li a1, 1
            slt a2, a0, a1
            sltu a3, a0, a1
            halt
        """)
        assert system.cpu.regs[12] == 1  # signed: -1 < 1
        assert system.cpu.regs[13] == 0  # unsigned: 2^64-1 > 1

    def test_x0_is_hardwired_zero(self):
        system = run_program("""
        entry:
            addi x0, x0, 5
            mv a0, x0
            halt
        """)
        assert system.cpu.regs[10] == 0


class TestMemoryAndControlFlow:
    def test_load_store_roundtrip(self):
        system = run_program("""
        entry:
            li s0, 0x620000
            li a0, 0x1234
            sd a0, 0(s0)
            ld a1, 0(s0)
            lw a2, 0(s0)
            lb a3, 1(s0)
            halt
        """)
        assert system.cpu.regs[11] == 0x1234
        assert system.cpu.regs[12] == 0x1234
        assert system.cpu.regs[13] == 0x12

    def test_sign_extending_loads(self):
        system = run_program("""
        entry:
            li s0, 0x620000
            li a0, 0xFF
            sb a0, 0(s0)
            lb a1, 0(s0)
            lbu a2, 0(s0)
            halt
        """)
        assert system.cpu.regs[11] == (1 << 64) - 1
        assert system.cpu.regs[12] == 0xFF

    def test_loop(self):
        system = run_program("""
        entry:
            li a0, 0
            li t0, 10
        loop:
            addi a0, a0, 2
            addi t0, t0, -1
            bnez t0, loop
            halt
        """)
        assert system.cpu.regs[10] == 20

    def test_function_call(self):
        system = run_program("""
        entry:
            li a0, 5
            call double
            halt
        double:
            add a0, a0, a0
            ret
        """)
        assert system.cpu.regs[10] == 10

    def test_jalr_clears_low_bit(self):
        system = run_program("""
        entry:
            la t0, target
            addi t0, t0, 1
            jalr ra, t0, 0
        target:
            halt
        """)
        assert system.cpu.exit_code is not None


class TestTraps:
    def test_ecall_vectors_to_stvec(self):
        system = run_program("""
        entry:
            la t0, handler
            csrw stvec, t0
            ecall
            halt
        handler:
            li a0, 99
            halt
        """)
        assert system.cpu.regs[10] == 99
        assert system.cpu.csrs[CSR_ADDRESS["scause"]] == 9  # ecall from S

    def test_ecall_saves_sepc(self):
        system = run_program("""
        entry:
            la t0, handler
            csrw stvec, t0
        site:
            ecall
            halt
        handler:
            csrr a1, sepc
            halt
        """)
        # sepc == address of the ecall
        program_site = system.cpu.regs[11]
        assert system.machine.memory.load(program_site, 4) == 0x00000073

    def test_trap_without_handler_panics(self):
        with pytest.raises(CpuPanic):
            run_program("entry:\n    ecall\n    halt\n")

    def test_illegal_instruction_cause(self):
        system = run_program("""
        entry:
            la t0, handler
            csrw stvec, t0
            .word 0xFFFFFFFF
            halt
        handler:
            csrr a0, scause
            halt
        """)
        assert system.cpu.regs[10] == CAUSE_ILLEGAL_INSTRUCTION

    def test_sret_returns_and_restores_mode(self):
        system = run_program("""
        entry:
            la t0, handler
            csrw stvec, t0
            la t0, user_code
            csrw sepc, t0
            li t1, 0x100
            csrrc x0, sstatus, t1
            sret
        user_code:
            ecall
        after:
            halt
        handler:
            csrr a0, scause
            csrr t0, sepc
            addi t0, t0, 4
            csrw sepc, t0
            sret
        """)
        # user ecall (cause 8), handler resumes after it, halt in U mode
        assert system.cpu.regs[10] == CAUSE_ECALL_U

    def test_user_mode_cannot_touch_csrs(self):
        system = run_program("""
        entry:
            la t0, handler
            csrw stvec, t0
            la t0, user_code
            csrw sepc, t0
            li t1, 0x100
            csrrc x0, sstatus, t1
            sret
        user_code:
            csrw satp, t0
            halt
        handler:
            li a0, 77
            halt
        """)
        assert system.cpu.regs[10] == 77
        assert system.cpu.csrs[CSR_ADDRESS["scause"]] == CAUSE_ILLEGAL_INSTRUCTION

    def test_user_can_read_cycle_counter(self):
        system = run_program("""
        entry:
            la t0, user_code
            csrw sepc, t0
            li t1, 0x100
            csrrc x0, sstatus, t1
            sret
        user_code:
            csrr a0, cycle
            halt
        """)
        assert system.cpu.regs[10] > 0


class TestCsrSemantics:
    def test_csrrw_swaps(self):
        system = run_program("""
        entry:
            li t0, 0xAA
            csrw sscratch, t0
            li t1, 0xBB
            csrrw a0, sscratch, t1
            csrr a1, sscratch
            halt
        """)
        assert system.cpu.regs[10] == 0xAA
        assert system.cpu.regs[11] == 0xBB

    def test_csrrs_sets_bits(self):
        system = run_program("""
        entry:
            li t0, 0b1100
            csrw sscratch, t0
            li t1, 0b0011
            csrrs a0, sscratch, t1
            csrr a1, sscratch
            halt
        """)
        assert system.cpu.regs[10] == 0b1100
        assert system.cpu.regs[11] == 0b1111

    def test_csrrc_clears_bits(self):
        system = run_program("""
        entry:
            li t0, 0b1111
            csrw sscratch, t0
            li t1, 0b0101
            csrrc x0, sscratch, t1
            csrr a1, sscratch
            halt
        """)
        assert system.cpu.regs[11] == 0b1010

    def test_csr_immediate_forms(self):
        system = run_program("""
        entry:
            csrrwi a0, sscratch, 21
            csrr a1, sscratch
            halt
        """)
        assert system.cpu.regs[11] == 21

    def test_domain_register_read_only(self):
        system = run_program("""
        entry:
            la t0, handler
            csrw stvec, t0
            csrw 0x5C0, t0
            halt
        handler:
            li a0, 55
            halt
        """)
        assert system.cpu.regs[10] == 55  # write trapped as illegal

    def test_unimplemented_csr_traps(self):
        system = run_program("""
        entry:
            la t0, handler
            csrw stvec, t0
            csrr a0, 0x7C0
            halt
        handler:
            li a0, 66
            halt
        """)
        assert system.cpu.regs[10] == 66


class TestIsaGridIntegration:
    def _setup(self, system):
        manager = system.manager
        kernel = manager.create_domain("kernel")
        manager.allow_instructions(
            kernel.domain_id,
            ["alu", "load", "store", "branch", "jump", "csr", "halt"],
        )
        manager.grant_register(kernel.domain_id, "sscratch", read=True, write=True)
        manager.grant_register(kernel.domain_id, "stvec", read=True, write=True)
        manager.grant_register(kernel.domain_id, "scause", read=True)
        return kernel

    def test_csr_fault_vectors_with_custom_cause(self):
        def setup(system):
            kernel = self._setup(system)
            gate = system.manager.register_gate(0, 0, kernel.domain_id)

        system = build_riscv_system()
        kernel = self._setup(system)
        source = """
        entry:
            la t0, handler
            csrw stvec, t0
            li t0, 0
        g0:
            hccall t0
        in_kernel:
            csrw satp, t0
            halt
        handler:
            csrr a0, scause
            halt
        """
        program = assemble(source, base=KERNEL_BASE)
        system.load(program)
        system.manager.register_gate(
            program.symbol("g0"), program.symbol("in_kernel"), kernel.domain_id
        )
        system.run(program.symbol("entry"), max_steps=10_000)
        assert system.cpu.regs[10] == CAUSE_ISA_GRID_FAULT

    def test_gate_roundtrip_with_trusted_stack(self):
        system = build_riscv_system()
        manager = system.manager
        kernel = self._setup(system)
        vm = manager.create_domain("vm")
        manager.allow_instructions(vm.domain_id, ["alu", "csr", "hcrets"])
        manager.grant_register(vm.domain_id, "satp", write=True, read=True)
        manager.allocate_trusted_stack()
        source = """
        entry:
            li t0, 0
        g0:
            hccall t0
        in_kernel:
            li a0, 0x42
            li t0, 1
        g1:
            hccalls t0
        back:
            halt
        fn_vm:
            csrw satp, a0
            hcrets
        """
        program = assemble(source, base=KERNEL_BASE)
        system.load(program)
        manager.register_gate(program.symbol("g0"), program.symbol("in_kernel"), kernel.domain_id)
        manager.register_gate(program.symbol("g1"), program.symbol("fn_vm"), vm.domain_id)
        system.run(program.symbol("entry"), max_steps=10_000)
        assert system.cpu.csrs[CSR_ADDRESS["satp"]] == 0x42
        assert system.pcu.current_domain == kernel.domain_id

    def test_forged_gate_faults(self):
        system = build_riscv_system()
        kernel = self._setup(system)
        source = """
        entry:
            la t0, handler
            csrw stvec, t0
            li t0, 0
        not_the_gate:
            hccall t0
            halt
        handler:
            csrr a0, scause
            halt
        """
        program = assemble(source, base=KERNEL_BASE)
        system.load(program)
        system.manager.register_gate(0x9999000, 0x9999100, kernel.domain_id)
        system.run(program.symbol("entry"), max_steps=10_000)
        assert system.cpu.regs[10] == CAUSE_ISA_GRID_FAULT

    def test_trusted_memory_untouchable_outside_domain0(self):
        from repro.riscv import TRUSTED_BASE

        system = build_riscv_system()
        kernel = self._setup(system)
        source = """
        entry:
            la t0, handler
            csrw stvec, t0
            li t0, 0
        g0:
            hccall t0
        in_kernel:
            li t1, %d
            ld a1, 0(t1)
            halt
        handler:
            csrr a0, scause
            halt
        """ % TRUSTED_BASE
        program = assemble(source, base=KERNEL_BASE)
        system.load(program)
        system.manager.register_gate(
            program.symbol("g0"), program.symbol("in_kernel"), kernel.domain_id
        )
        system.run(program.symbol("entry"), max_steps=10_000)
        from repro.riscv import CAUSE_TRUSTED_MEMORY

        assert system.cpu.regs[10] == CAUSE_TRUSTED_MEMORY

    def test_domain0_may_read_trusted_memory(self):
        from repro.riscv import TRUSTED_BASE

        system = run_program("""
        entry:
            li t1, %d
            ld a1, 0(t1)
            halt
        """ % TRUSTED_BASE, with_isagrid=True)
        assert system.cpu.exit_code is not None
