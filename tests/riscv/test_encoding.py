"""RV64 encode/decode, including roundtrip property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.riscv.encoding import (
    EncodingError,
    decode,
    encode,
    instruction_class,
    load_width,
    sign_extend,
)


class TestSignExtend:
    def test_positive(self):
        assert sign_extend(0x7FF, 12) == 0x7FF

    def test_negative(self):
        assert sign_extend(0xFFF, 12) == -1
        assert sign_extend(0x800, 12) == -2048

    @given(st.integers(min_value=-2048, max_value=2047))
    def test_roundtrip_12(self, value):
        assert sign_extend(value & 0xFFF, 12) == value


class TestKnownEncodings:
    """Spot checks against the RISC-V spec's reference encodings."""

    def test_addi(self):
        # addi x1, x2, 3 = 0x00310093
        assert encode("addi", rd=1, rs1=2, imm=3) == 0x00310093

    def test_ecall(self):
        assert encode("ecall") == 0x00000073

    def test_sret(self):
        assert encode("sret") == 0x10200073

    def test_mret(self):
        assert encode("mret") == 0x30200073

    def test_csrrw(self):
        # csrrw x5, sstatus(0x100), x6 = 0x100312f3
        assert encode("csrrw", rd=5, rs1=6, csr=0x100) == 0x100312F3

    def test_nop_decodes(self):
        inst = decode(0x00000013)  # addi x0, x0, 0
        assert inst.mnemonic == "addi" and inst.rd == 0 and inst.imm == 0

    def test_jal_negative_offset(self):
        word = encode("jal", rd=0, imm=-8)
        inst = decode(word)
        assert inst.mnemonic == "jal" and inst.imm == -8

    def test_branch_offset(self):
        word = encode("beq", rs1=1, rs2=2, imm=-4096)
        inst = decode(word)
        assert inst.imm == -4096

    def test_store_negative_offset(self):
        word = encode("sd", rs1=2, rs2=3, imm=-16)
        inst = decode(word)
        assert inst.mnemonic == "sd" and inst.imm == -16 and inst.rs2 == 3


class TestGridExtension:
    @pytest.mark.parametrize("mnemonic", ["hccall", "hccalls", "hcrets", "pfch", "pflh", "halt"])
    def test_custom0_roundtrip(self, mnemonic):
        word = encode(mnemonic, rs1=10)
        inst = decode(word)
        assert inst.mnemonic == mnemonic
        assert inst.rs1 == 10
        assert word & 0x7F == 0x0B  # custom-0 opcode

    def test_gate_classes(self):
        assert instruction_class("hccall") == "hccall"
        assert instruction_class("csrrw") == "csr"
        assert instruction_class("mul") == "mul"
        assert instruction_class("add") == "alu"


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(EncodingError):
            encode("vfmadd")

    def test_bad_register(self):
        with pytest.raises(EncodingError):
            encode("add", rd=32, rs1=0, rs2=0)

    def test_immediate_range(self):
        with pytest.raises(EncodingError):
            encode("addi", rd=1, rs1=1, imm=5000)
        with pytest.raises(EncodingError):
            encode("beq", rs1=0, rs2=0, imm=3)  # odd offset

    def test_undecodable_word(self):
        with pytest.raises(EncodingError):
            decode(0xFFFFFFFF)
        with pytest.raises(EncodingError):
            decode(0x00000000)

    def test_load_width(self):
        assert load_width("ld") == 8
        assert load_width("lbu") == 1
        assert load_width("sw") == 4


REG = st.integers(min_value=0, max_value=31)


class TestRoundtrip:
    @given(rd=REG, rs1=REG, rs2=REG)
    def test_r_type(self, rd, rs1, rs2):
        for mnemonic in ("add", "sub", "xor", "mul", "sltu"):
            inst = decode(encode(mnemonic, rd=rd, rs1=rs1, rs2=rs2))
            assert (inst.mnemonic, inst.rd, inst.rs1, inst.rs2) == (mnemonic, rd, rs1, rs2)

    @given(rd=REG, rs1=REG, imm=st.integers(min_value=-2048, max_value=2047))
    def test_i_type(self, rd, rs1, imm):
        for mnemonic in ("addi", "andi", "ld", "jalr"):
            inst = decode(encode(mnemonic, rd=rd, rs1=rs1, imm=imm))
            assert (inst.mnemonic, inst.rd, inst.rs1, inst.imm) == (mnemonic, rd, rs1, imm)

    @given(rs1=REG, rs2=REG, imm=st.integers(min_value=-2048, max_value=2047))
    def test_s_type(self, rs1, rs2, imm):
        inst = decode(encode("sd", rs1=rs1, rs2=rs2, imm=imm))
        assert (inst.rs1, inst.rs2, inst.imm) == (rs1, rs2, imm)

    @given(rs1=REG, rs2=REG,
           imm=st.integers(min_value=-2048, max_value=2047).map(lambda i: i * 2))
    def test_b_type(self, rs1, rs2, imm):
        inst = decode(encode("bne", rs1=rs1, rs2=rs2, imm=imm))
        assert (inst.rs1, inst.rs2, inst.imm) == (rs1, rs2, imm)

    @given(rd=REG, imm=st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1)
           .map(lambda i: i * 2))
    def test_j_type(self, rd, imm):
        inst = decode(encode("jal", rd=rd, imm=imm))
        assert (inst.rd, inst.imm) == (rd, imm)

    @given(rd=REG, rs1=REG, csr=st.integers(min_value=0, max_value=0xFFF))
    def test_csr_ops(self, rd, rs1, csr):
        inst = decode(encode("csrrs", rd=rd, rs1=rs1, csr=csr))
        assert (inst.rd, inst.rs1, inst.csr) == (rd, rs1, csr)

    @given(rd=REG, shamt=st.integers(min_value=0, max_value=63))
    def test_shifts(self, rd, shamt):
        for mnemonic in ("slli", "srli", "srai"):
            inst = decode(encode(mnemonic, rd=rd, rs1=rd, imm=shamt))
            assert inst.mnemonic == mnemonic and inst.imm == shamt
