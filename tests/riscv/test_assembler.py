"""The RV64 assembler: labels, pseudo-ops, directives."""

import pytest

from repro.riscv import assemble, decode
from repro.riscv.assembler import AssemblerError


def decode_all(program):
    return [decode(int.from_bytes(program.data[i:i + 4], "little"))
            for i in range(0, len(program.data), 4)]


class TestBasics:
    def test_simple_program(self):
        program = assemble("start:\n    addi a0, zero, 5\n    halt\n", base=0x1000)
        assert program.base == 0x1000
        assert program.size == 8
        assert program.symbol("start") == 0x1000

    def test_labels_point_at_next_instruction(self):
        program = assemble("""
        a:
            nop
        b:  nop
        """, base=0)
        assert program.symbol("a") == 0
        assert program.symbol("b") == 4

    def test_comments_stripped(self):
        program = assemble("nop # comment\n    nop\n", base=0)
        assert program.size == 8

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a:\nnop\na:\nnop\n")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate a0, a1\n")

    def test_unknown_symbol(self):
        with pytest.raises(AssemblerError):
            assemble("j nowhere\n")


class TestPseudoOps:
    def test_li_small(self):
        program = assemble("li a0, 42\n", base=0)
        (inst,) = decode_all(program)
        assert inst.mnemonic == "addi" and inst.imm == 42

    def test_li_negative(self):
        program = assemble("li a0, -5\n", base=0)
        (inst,) = decode_all(program)
        assert inst.imm == -5

    def test_li_32bit(self):
        program = assemble("li t0, 0x12345678\n", base=0)
        instructions = decode_all(program)
        assert instructions[0].mnemonic == "lui"
        assert instructions[1].mnemonic == "addi"

    def test_mv_and_nop(self):
        program = assemble("mv a1, a0\n    nop\n", base=0)
        first, second = decode_all(program)
        assert first.mnemonic == "addi" and first.rs1 == 10 and first.rd == 11
        assert second.rd == 0

    def test_j_and_call(self):
        program = assemble("""
        start:
            j end
            call end
        end:
            ret
        """, base=0)
        jump, call, ret = decode_all(program)
        assert jump.mnemonic == "jal" and jump.rd == 0 and jump.imm == 8
        assert call.mnemonic == "jal" and call.rd == 1 and call.imm == 4
        assert ret.mnemonic == "jalr" and ret.rs1 == 1

    def test_beqz_bnez(self):
        program = assemble("""
        top:
            beqz a0, top
            bnez a1, top
        """, base=0)
        beq, bne = decode_all(program)
        assert beq.mnemonic == "beq" and beq.imm == 0
        assert bne.mnemonic == "bne" and bne.imm == -4

    def test_csr_pseudo_ops(self):
        program = assemble("""
            csrr a0, sstatus
            csrw satp, a1
        """, base=0)
        read, write = decode_all(program)
        assert read.mnemonic == "csrrs" and read.csr == 0x100 and read.rs1 == 0
        assert write.mnemonic == "csrrw" and write.csr == 0x180 and write.rd == 0

    def test_csr_by_number(self):
        program = assemble("csrr a0, 0x141\n", base=0)
        (inst,) = decode_all(program)
        assert inst.csr == 0x141

    def test_la_resolves_symbols(self):
        program = assemble("""
        start:
            la a0, target
            nop
        target:
            nop
        """, base=0x4000)
        # la is always 8 bytes (lui+addi)
        assert program.symbol("target") == 0x400C

    def test_memory_operands(self):
        program = assemble("ld a0, -8(sp)\n    sd a1, 16(s0)\n", base=0)
        load, store = decode_all(program)
        assert load.imm == -8 and load.rs1 == 2
        assert store.imm == 16 and store.rs1 == 8


class TestDirectives:
    def test_word(self):
        program = assemble(".word 0xDEADBEEF, 0x1\n", base=0)
        assert program.data[:4] == (0xDEADBEEF).to_bytes(4, "little")
        assert program.size == 8

    def test_zero(self):
        program = assemble(".zero 16\n    nop\n", base=0)
        assert program.size == 20
        assert program.data[:16] == b"\x00" * 16

    def test_align(self):
        program = assemble("nop\n.align 16\naligned:\n    nop\n", base=0)
        assert program.symbol("aligned") == 16


class TestLoading:
    def test_load_into_memory(self):
        from repro.sim import PhysicalMemory

        memory = PhysicalMemory(size=1 << 20)
        program = assemble("li a0, 1\n", base=0x2000)
        program.load(memory)
        assert memory.load_bytes(0x2000, 4) == program.data
