"""Differential property tests: random RV64 ALU programs vs a Python
reference interpreter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.riscv import KERNEL_BASE, assemble, build_riscv_system
from repro.riscv.encoding import sign_extend

MASK64 = (1 << 64) - 1


def _ref_signed(value):
    return sign_extend(value & MASK64, 64)


def _div_trunc(a, b):
    if b == 0:
        return -1
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


#: (mnemonic, reference semantics over unsigned 64-bit operands)
BINARY_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: a << (b & 63),
    "srl": lambda a, b: a >> (b & 63),
    "sra": lambda a, b: _ref_signed(a) >> (b & 63),
    "slt": lambda a, b: int(_ref_signed(a) < _ref_signed(b)),
    "sltu": lambda a, b: int(a < b),
    "mul": lambda a, b: _ref_signed(a) * _ref_signed(b),
    "mulh": lambda a, b: (_ref_signed(a) * _ref_signed(b)) >> 64,
    "mulhu": lambda a, b: (a * b) >> 64,
    "mulhsu": lambda a, b: (_ref_signed(a) * b) >> 64,
    "div": lambda a, b: _div_trunc(_ref_signed(a), _ref_signed(b)),
    "divu": lambda a, b: MASK64 if b == 0 else a // b,
    "rem": lambda a, b: _ref_signed(a) if b == 0
        else _ref_signed(a) - _div_trunc(_ref_signed(a), _ref_signed(b)) * _ref_signed(b),
    "remu": lambda a, b: a if b == 0 else a % b,
    "addw": lambda a, b: sign_extend((a + b) & 0xFFFFFFFF, 32),
    "subw": lambda a, b: sign_extend((a - b) & 0xFFFFFFFF, 32),
    "sllw": lambda a, b: sign_extend((a << (b & 31)) & 0xFFFFFFFF, 32),
    "srlw": lambda a, b: sign_extend((a & 0xFFFFFFFF) >> (b & 31), 32),
    "sraw": lambda a, b: sign_extend(a & 0xFFFFFFFF, 32) >> (b & 31),
    "mulw": lambda a, b: sign_extend((a * b) & 0xFFFFFFFF, 32),
}


def run_binary_op(mnemonic, a, b):
    system = build_riscv_system(with_isagrid=False)
    source = """
entry:
    li a0, %d
    li a1, %d
    %s a2, a0, a1
    halt
""" % (sign_extend(a, 64), sign_extend(b, 64), mnemonic)
    program = assemble(source, base=KERNEL_BASE)
    system.load(program)
    system.run(program.symbol("entry"), max_steps=100)
    return system.cpu.regs[12]


VALUE = st.integers(min_value=0, max_value=MASK64)


@settings(max_examples=25, deadline=None)
@given(a=VALUE, b=VALUE, op=st.sampled_from(sorted(BINARY_OPS)))
def test_binary_ops_match_reference(a, b, op):
    expected = BINARY_OPS[op](a, b) & MASK64
    assert run_binary_op(op, a, b) == expected


@settings(max_examples=15, deadline=None)
@given(value=VALUE)
def test_li_materializes_any_64bit_constant(value):
    system = build_riscv_system(with_isagrid=False)
    program = assemble("entry:\n    li a0, %d\n    halt\n" % sign_extend(value, 64),
                       base=KERNEL_BASE)
    system.load(program)
    system.run(program.symbol("entry"), max_steps=100)
    assert system.cpu.regs[10] == value


@settings(max_examples=15, deadline=None)
@given(value=VALUE, shift=st.integers(min_value=0, max_value=63))
def test_shift_immediates_match_reference(value, shift):
    system = build_riscv_system(with_isagrid=False)
    source = """
entry:
    li a0, %d
    slli a1, a0, %d
    srli a2, a0, %d
    srai a3, a0, %d
    halt
""" % (sign_extend(value, 64), shift, shift, shift)
    program = assemble(source, base=KERNEL_BASE)
    system.load(program)
    system.run(program.symbol("entry"), max_steps=100)
    assert system.cpu.regs[11] == (value << shift) & MASK64
    assert system.cpu.regs[12] == value >> shift
    assert system.cpu.regs[13] == (_ref_signed(value) >> shift) & MASK64


@settings(max_examples=10, deadline=None)
@given(values=st.lists(VALUE, min_size=1, max_size=8))
def test_store_load_roundtrip_sequence(values):
    system = build_riscv_system(with_isagrid=False)
    lines = ["entry:", "    li s1, 0x620000"]
    for index, value in enumerate(values):
        lines.append("    li t0, %d" % sign_extend(value, 64))
        lines.append("    sd t0, %d(s1)" % (8 * index))
    lines.append("    halt")
    program = assemble("\n".join(lines) + "\n", base=KERNEL_BASE)
    system.load(program)
    system.run(program.symbol("entry"), max_steps=2000)
    for index, value in enumerate(values):
        assert system.machine.memory.load(0x620000 + 8 * index, 8) == value
