"""Sv39 virtual memory: walks, permissions, TLB, and SATP semantics."""

import pytest

from repro.riscv import CSR_ADDRESS, KERNEL_BASE, assemble, build_riscv_system
from repro.riscv.mmu import (
    CAUSE_FETCH_PAGE_FAULT,
    CAUSE_LOAD_PAGE_FAULT,
    CAUSE_STORE_PAGE_FAULT,
    PTE_A,
    PTE_D,
    PTE_R,
    PTE_U,
    PTE_V,
    PTE_W,
    PTE_X,
    PageFault,
    PageTableBuilder,
    Sv39Mmu,
    make_pte,
    make_satp,
)
from repro.sim import PhysicalMemory

PT_BASE = 0x0200_0000


def make_mmu():
    memory = PhysicalMemory(size=1 << 30)
    return memory, Sv39Mmu(memory), PageTableBuilder(memory, PT_BASE)


class TestWalk:
    def test_identity_mapping(self):
        memory, mmu, pt = make_mmu()
        pt.identity_map(0x10000, 0x3000, PTE_R | PTE_W)
        paddr, _ = mmu.translate(0x10123, "load", satp=pt.satp(), priv_mode=1)
        assert paddr == 0x10123

    def test_aliased_mapping(self):
        memory, mmu, pt = make_mmu()
        pt.map_page(0x4000_0000, 0x9000, PTE_R)
        paddr, _ = mmu.translate(0x4000_0ABC, "load", satp=pt.satp(), priv_mode=1)
        assert paddr == 0x9ABC

    def test_unmapped_faults(self):
        memory, mmu, pt = make_mmu()
        with pytest.raises(PageFault) as excinfo:
            mmu.translate(0x7000, "load", satp=pt.satp(), priv_mode=1)
        assert excinfo.value.cause == CAUSE_LOAD_PAGE_FAULT

    def test_bare_mode_is_identity(self):
        memory, mmu, _ = make_mmu()
        paddr, cycles = mmu.translate(0xDEAD000, "store", satp=0, priv_mode=1)
        assert paddr == 0xDEAD000 and cycles == 0

    def test_machine_mode_bypasses(self):
        memory, mmu, pt = make_mmu()
        paddr, _ = mmu.translate(0x7000, "load", satp=pt.satp(), priv_mode=3)
        assert paddr == 0x7000

    def test_non_canonical_address_faults(self):
        memory, mmu, pt = make_mmu()
        with pytest.raises(PageFault):
            mmu.translate(1 << 45, "load", satp=pt.satp(), priv_mode=1)

    def test_write_only_pte_reserved(self):
        """R=0, W=1 is a reserved combination -> fault."""
        memory, mmu, pt = make_mmu()
        pt.map_page(0x10000, 0x9000, PTE_W)
        # map_page sets V|A|D; clear R leaves the reserved combination.
        with pytest.raises(PageFault):
            mmu.translate(0x10000, "store", satp=pt.satp(), priv_mode=1)

    def test_superpage_leaf_at_level_1(self):
        memory, mmu, pt = make_mmu()
        # Hand-install a 2 MiB leaf at level 1 of a fresh second level.
        vaddr = 0x4020_0000
        root = pt.root
        level2_index = vaddr >> 30 & 0x1FF
        table1 = PT_BASE + 0x10000
        for offset in range(0, 4096, 8):
            memory.store(table1 + offset, 0, 8)
        memory.store(root + level2_index * 8, make_pte(table1, PTE_V), 8)
        level1_index = vaddr >> 21 & 0x1FF
        memory.store(
            table1 + level1_index * 8,
            make_pte(0x0040_0000, PTE_V | PTE_R | PTE_A | PTE_D),
            8,
        )
        paddr, _ = mmu.translate(
            vaddr + 0x12345, "load", satp=pt.satp(), priv_mode=1
        )
        assert paddr == 0x0040_0000 + 0x12345

    def test_misaligned_superpage_faults(self):
        memory, mmu, pt = make_mmu()
        vaddr = 0x4020_0000
        root = pt.root
        table1 = PT_BASE + 0x10000
        for offset in range(0, 4096, 8):
            memory.store(table1 + offset, 0, 8)
        memory.store(root + (vaddr >> 30 & 0x1FF) * 8, make_pte(table1, PTE_V), 8)
        # PPN not aligned to the 2 MiB boundary.
        memory.store(
            table1 + (vaddr >> 21 & 0x1FF) * 8,
            make_pte(0x0040_1000, PTE_V | PTE_R | PTE_A | PTE_D),
            8,
        )
        with pytest.raises(PageFault):
            mmu.translate(vaddr, "load", satp=pt.satp(), priv_mode=1)


class TestPermissions:
    @pytest.fixture
    def mapped(self):
        memory, mmu, pt = make_mmu()
        pt.map_page(0x10000, 0x9000, PTE_R)                 # read-only
        pt.map_page(0x11000, 0x9000, PTE_R | PTE_W)         # read-write
        pt.map_page(0x12000, 0x9000, PTE_R | PTE_X)         # executable
        pt.map_page(0x13000, 0x9000, PTE_R | PTE_W | PTE_U)  # user page
        return mmu, pt.satp()

    def test_store_to_readonly_faults(self, mapped):
        mmu, satp = mapped
        with pytest.raises(PageFault) as excinfo:
            mmu.translate(0x10000, "store", satp=satp, priv_mode=1)
        assert excinfo.value.cause == CAUSE_STORE_PAGE_FAULT

    def test_fetch_from_nx_faults(self, mapped):
        mmu, satp = mapped
        with pytest.raises(PageFault) as excinfo:
            mmu.translate(0x11000, "fetch", satp=satp, priv_mode=1)
        assert excinfo.value.cause == CAUSE_FETCH_PAGE_FAULT

    def test_fetch_from_x_page(self, mapped):
        mmu, satp = mapped
        mmu.translate(0x12000, "fetch", satp=satp, priv_mode=1)

    def test_user_cannot_touch_supervisor_pages(self, mapped):
        mmu, satp = mapped
        with pytest.raises(PageFault):
            mmu.translate(0x11000, "load", satp=satp, priv_mode=0)

    def test_supervisor_needs_sum_for_user_pages(self, mapped):
        mmu, satp = mapped
        with pytest.raises(PageFault):
            mmu.translate(0x13000, "load", satp=satp, priv_mode=1)
        mmu.flush_tlb()
        mmu.translate(0x13000, "load", satp=satp, priv_mode=1, sum_bit=True)

    def test_supervisor_never_fetches_user_pages(self, mapped):
        """SUM covers data only (the SMEP-like rule)."""
        mmu, satp = mapped
        with pytest.raises(PageFault):
            mmu.translate(0x13000, "fetch", satp=satp, priv_mode=1, sum_bit=True)


class TestTlb:
    def test_hit_after_walk(self):
        memory, mmu, pt = make_mmu()
        pt.map_page(0x10000, 0x9000, PTE_R)
        satp = pt.satp()
        mmu.translate(0x10000, "load", satp=satp, priv_mode=1)
        mmu.translate(0x10008, "load", satp=satp, priv_mode=1)
        assert mmu.tlb_hits == 1 and mmu.walks == 1

    def test_sfence_flushes(self):
        memory, mmu, pt = make_mmu()
        pt.map_page(0x10000, 0x9000, PTE_R)
        satp = pt.satp()
        mmu.translate(0x10000, "load", satp=satp, priv_mode=1)
        mmu.flush_tlb()
        mmu.translate(0x10000, "load", satp=satp, priv_mode=1)
        assert mmu.walks == 2

    def test_asids_do_not_collide(self):
        memory, mmu, pt_a = make_mmu()
        pt_b = PageTableBuilder(memory, PT_BASE + 0x100000)
        pt_a.map_page(0x10000, 0x9000, PTE_R)
        pt_b.map_page(0x10000, 0xA000, PTE_R)
        pa, _ = mmu.translate(0x10000, "load", satp=pt_a.satp(asid=1), priv_mode=1)
        pb, _ = mmu.translate(0x10000, "load", satp=pt_b.satp(asid=2), priv_mode=1)
        assert (pa, pb) == (0x9000, 0xA000)

    def test_capacity_bounded(self):
        memory, mmu, pt = make_mmu()
        mmu.tlb_entries = 4
        for index in range(8):
            pt.map_page(0x10000 + index * 0x1000, 0x9000, PTE_R)
        for index in range(8):
            mmu.translate(0x10000 + index * 0x1000, "load",
                          satp=pt.satp(), priv_mode=1)
        assert len(mmu._tlb) <= 4


class TestCpuIntegration:
    def test_paged_execution_end_to_end(self):
        system = build_riscv_system(with_isagrid=False)
        memory = system.machine.memory
        pt = PageTableBuilder(memory, PT_BASE)
        pt.identity_map(KERNEL_BASE, 0x10000, PTE_R | PTE_X)
        pt.identity_map(0x0060_0000, 0x100000, PTE_R | PTE_W)
        pt.map_page(0x4000_0000, 0x0062_0000, PTE_R | PTE_W)
        source = """
entry:
    li t0, %d
    csrw satp, t0
    sfence.vma
    li t1, 0x620000
    li t2, 0x77
    sd t2, 0(t1)
    li t3, 0x40000000
    ld a0, 0(t3)
    halt
""" % pt.satp()
        program = assemble(source, base=KERNEL_BASE)
        system.load(program)
        system.run(program.symbol("entry"), max_steps=1_000)
        assert system.cpu.regs[10] == 0x77

    def test_page_fault_vectors_to_stvec(self):
        system = build_riscv_system(with_isagrid=False)
        memory = system.machine.memory
        pt = PageTableBuilder(memory, PT_BASE)
        pt.identity_map(KERNEL_BASE, 0x10000, PTE_R | PTE_X)
        pt.identity_map(0x0060_0000, 0x100000, PTE_R | PTE_W)
        source = """
entry:
    la t0, handler
    csrw stvec, t0
    li t0, %d
    csrw satp, t0
    sfence.vma
    li t1, 0x50000000
    ld a0, 0(t1)       # unmapped -> load page fault
    halt
handler:
    csrr a0, scause
    csrr a1, stval
    halt
""" % pt.satp()
        program = assemble(source, base=KERNEL_BASE)
        system.load(program)
        system.run(program.symbol("entry"), max_steps=1_000)
        assert system.cpu.regs[10] == CAUSE_LOAD_PAGE_FAULT
        assert system.cpu.regs[11] == 0x5000_0000

    def test_satp_switch_changes_address_space(self):
        """Two address spaces map the same VA to different frames —
        the property SATP hijack abuses."""
        system = build_riscv_system(with_isagrid=False)
        memory = system.machine.memory
        pt_a = PageTableBuilder(memory, PT_BASE)
        pt_b = PageTableBuilder(memory, PT_BASE + 0x100000)
        for pt in (pt_a, pt_b):
            pt.identity_map(KERNEL_BASE, 0x10000, PTE_R | PTE_X)
            pt.identity_map(0x0060_0000, 0x100000, PTE_R | PTE_W)
        pt_a.map_page(0x4000_0000, 0x0062_0000, PTE_R)
        pt_b.map_page(0x4000_0000, 0x0063_0000, PTE_R)
        memory.store(0x0062_0000, 0xAAAA, 8)
        memory.store(0x0063_0000, 0xBBBB, 8)
        source = """
entry:
    li t0, %d
    csrw satp, t0
    sfence.vma
    li t3, 0x40000000
    ld a0, 0(t3)
    li t0, %d
    csrw satp, t0
    sfence.vma
    ld a1, 0(t3)
    halt
""" % (pt_a.satp(asid=1), pt_b.satp(asid=2))
        program = assemble(source, base=KERNEL_BASE)
        system.load(program)
        system.run(program.symbol("entry"), max_steps=1_000)
        assert system.cpu.regs[10] == 0xAAAA
        assert system.cpu.regs[11] == 0xBBBB

    def test_tlb_miss_costs_cycles(self):
        memory, mmu, pt = make_mmu()
        from repro.sim import rocket_hierarchy

        mmu.hierarchy = rocket_hierarchy()
        pt.map_page(0x10000, 0x9000, PTE_R)
        _, miss_cycles = mmu.translate(0x10000, "load", satp=pt.satp(), priv_mode=1)
        _, hit_cycles = mmu.translate(0x10000, "load", satp=pt.satp(), priv_mode=1)
        assert miss_cycles > 0 and hit_cycles == 0
