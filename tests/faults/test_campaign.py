"""Campaign runner: classification protocol, determinism, reporting."""

import json

import pytest

from repro.faults import (
    CLASSIFICATIONS,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    run_campaign,
    run_campaigns,
    write_report,
)


class TestSingleCampaign:
    def test_campaigns_are_deterministic(self):
        spec = FaultPlan(0).draw(0, 300)
        a = run_campaign("riscv", spec, stream_seed=0, n_events=300)
        b = run_campaign("riscv", spec, stream_seed=0, n_events=300)
        assert a.classification == b.classification
        assert a.detail == b.detail
        assert a.divergence_index == b.divergence_index

    def test_store_fault_rolls_back_and_recovers(self):
        # store_fault arms a one-shot failing store; the transactional
        # DomainManager must roll back and the run must end recovered.
        spec = FaultPlan(0).draw(FAULT_KINDS.index("store_fault"), 300)
        assert spec.kind == "store_fault"
        result = run_campaign("riscv", spec, stream_seed=11, n_events=300)
        assert result.classification in ("detected_recovered", "benign")
        if result.rollbacks:
            assert result.classification == "detected_recovered"

    def test_classification_is_always_valid(self):
        plan = FaultPlan(2)
        for campaign in range(len(FAULT_KINDS)):
            spec = plan.draw(campaign, 200)
            result = run_campaign("riscv", spec, stream_seed=campaign,
                                  n_events=200, campaign=campaign)
            assert result.classification in CLASSIFICATIONS
            assert result.events_run > 0

    def test_escaped_store_fault_is_not_a_recovery(self):
        # Regression: this fault fires on a non-transactional store (a
        # gate-event trusted-stack push) — nothing rolls back, so the
        # classifier must NOT credit a phantom rollback and upgrade the
        # run to detected_recovered.
        spec = FaultSpec(kind="store_fault", trigger=40)
        result = run_campaign("riscv", spec, stream_seed=0, n_events=200)
        assert result.escaped_faults == 1
        assert result.rollbacks == 0
        assert result.classification == "benign"
        assert "fired outside any transaction" in result.detail

    def test_dual_fault_rollback_attributed_to_firing_injector(self):
        # Regression: with two store-fault specs armed, the rollback
        # belongs to the injector whose fault actually fired — not to
        # whichever store-ish spec happens to come first in the list.
        primary = FaultSpec(kind="store_fault", trigger=10_000)  # never arms
        extra = FaultSpec(kind="store_fault", trigger=5)
        result = run_campaign("riscv", primary, stream_seed=0, n_events=200,
                              extra_specs=[extra])
        assert result.rollbacks == 1
        first_detail, _, rest = result.detail.partition("; ")
        assert first_detail == "not triggered"
        assert "rolled back" in rest

    def test_result_roundtrips_to_dict(self):
        spec = FaultPlan(1).draw(0, 200)
        result = run_campaign("riscv", spec, stream_seed=1, n_events=200)
        data = result.to_dict()
        assert data["classification"] == result.classification
        assert data["spec"]["kind"] == spec.kind
        json.dumps(data)  # JSON-serializable


class TestFastSlowIdentity:
    """Cache-layer campaigns must classify identically with the PCU's
    compiled verdict plan disabled — the fast path is an optimisation,
    never a behaviour change, even under injected cache corruption."""

    KINDS = ("cache_corrupt", "cache_stale_pin", "bypass_corrupt")

    def test_cache_fault_campaigns_identical_without_fast_path(self):
        import dataclasses

        from repro.conformance.runner import CONFORMANCE_CONFIGS

        CONFORMANCE_CONFIGS["_slow_test"] = dataclasses.replace(
            CONFORMANCE_CONFIGS["draco"], fast_path=False)
        try:
            for kind in self.KINDS:
                campaign = FAULT_KINDS.index(kind)
                fast = run_campaign(
                    "riscv", FaultPlan(3).draw(campaign, 200),
                    stream_seed=campaign, n_events=200,
                    config="draco", campaign=campaign)
                slow = run_campaign(
                    "riscv", FaultPlan(3).draw(campaign, 200),
                    stream_seed=campaign, n_events=200,
                    config="_slow_test", campaign=campaign)
                assert fast.to_dict() == slow.to_dict(), kind
        finally:
            del CONFORMANCE_CONFIGS["_slow_test"]


class TestCampaignMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        # one full cycle of fault kinds on the nastiest (draco) config
        return run_campaigns("riscv", seed=0, n_events=300,
                             n_campaigns=len(FAULT_KINDS), config="draco")

    def test_no_widening_silent_divergence(self, matrix):
        assert matrix.widening_silent == []

    def test_detection_machinery_exercised(self, matrix):
        counts = matrix.counts
        assert sum(counts.values()) == len(FAULT_KINDS)
        assert counts["detected_recovered"] + counts["detected_halted"] > 0
        assert counts["benign"] > 0

    def test_full_fault_surface_covered(self, matrix):
        assert {r.spec.kind for r in matrix.results} == set(FAULT_KINDS)

    def test_x86_backend_matches_protocol(self):
        matrix = run_campaigns("x86", seed=0, n_events=300,
                               n_campaigns=4, config="draco")
        assert matrix.widening_silent == []
        for result in matrix.results:
            assert result.classification in CLASSIFICATIONS

    def test_report_written_and_gates_on_widening(self, matrix, tmp_path):
        path = str(tmp_path / "report.json")
        payload = write_report([matrix], path)
        assert payload["widening_silent_divergences"] == 0
        with open(path) as handle:
            on_disk = json.load(handle)
        assert on_disk["format"] == "isagrid-fault-campaign-v2"
        assert on_disk["classification_counts"] == matrix.counts
