"""The integrity scrubber: detection, repair, degraded mode, halts."""

import pytest

from repro.conformance import Event, generate_events
from repro.core.errors import IntegrityFault
from repro.faults import FaultInjector, FaultSpec


def warm(world):
    """Enter slot 1 with a grant so caches, bypass and stack are live."""
    world.apply(Event("allow_inst", domain=1, inst=0))
    world.apply(Event("register_gate", gate=0, domain=1))
    world.apply(Event("gate", kind="hccall", gate=0))
    world.apply(Event("check", inst=0))


class TestCleanScrub:
    def test_fresh_world_scrubs_clean(self, world, scrubber):
        assert scrubber.scrub().clean

    def test_warm_world_scrubs_clean(self, world, scrubber):
        warm(world)
        assert scrubber.scrub().clean

    def test_fuzzed_world_scrubs_clean(self, world, scrubber):
        for event in generate_events(9, 300):
            world.apply(event)
        report = scrubber.scrub()
        assert report.clean, (report.cache_detections, report.unrepairable)

    def test_checksums_match_on_clean_domain(self, world, scrubber):
        warm(world)
        domain = world.slot_ids[1]
        assert (scrubber.domain_checksum(domain)
                == scrubber.expected_domain_checksum(domain))


class TestMemoryRepair:
    def test_hpt_corruption_detected_and_repaired(self, world, scrubber):
        warm(world)
        domain = world.slot_ids[1]
        address = world.pcu.hpt.inst_word_address(domain, 0)
        world.backing.mutate_word(address, 7, "flip")
        assert (scrubber.domain_checksum(domain)
                != scrubber.expected_domain_checksum(domain))
        report = scrubber.scrub()
        assert report.memory_repairs == 1
        assert world.pcu.stats.scrub_repairs == 1
        assert scrubber.scrub().clean  # repaired for real

    def test_detection_without_repair_leaves_corruption(self, world, scrubber):
        warm(world)
        domain = world.slot_ids[1]
        address = world.pcu.hpt.inst_word_address(domain, 0)
        world.backing.mutate_word(address, 7, "flip")
        report = scrubber.scrub(repair=False)
        assert report.memory_repairs == 1
        assert world.pcu.stats.scrub_repairs == 0
        assert not scrubber.scrub(repair=False).clean  # still corrupt

    def test_sgt_corruption_repaired_from_gate_registry(self, world, scrubber):
        warm(world)
        address = world.pcu.sgt.entry_address(0) + 2 * 8  # dest domain word
        world.backing.mutate_word(address, 1, "flip")
        report = scrubber.scrub()
        assert report.memory_repairs == 1
        assert scrubber.scrub().clean

    def test_unregistered_valid_bit_repaired(self, world, scrubber):
        warm(world)
        world.apply(Event("unregister_gate", gate=0))
        address = world.pcu.sgt.entry_address(0) + 3 * 8  # valid word
        world.backing.mutate_word(address, 0, "set")  # resurrect the gate
        report = scrubber.scrub()
        assert report.memory_repairs == 1
        assert world.trusted_memory.load_word(address) == 0


class TestCacheDetection:
    def test_corrupt_cache_line_enters_degraded_mode(self, world, scrubber):
        warm(world)
        spec = FaultSpec("cache_corrupt", 0, module="inst", bit_op="flip")
        FaultInjector(world, world.backing, spec).on_event(0)
        report = scrubber.scrub()
        assert report.cache_detections
        assert report.entered_degraded
        assert world.pcu.degraded
        assert world.pcu.stats.degraded_entries == 1

    def test_clean_scrub_exits_degraded_mode(self, world, scrubber):
        warm(world)
        spec = FaultSpec("cache_corrupt", 0, module="inst", bit_op="flip")
        FaultInjector(world, world.backing, spec).on_event(0)
        scrubber.scrub()
        assert world.pcu.degraded
        report = scrubber.scrub()
        assert report.clean and report.exited_degraded
        assert not world.pcu.degraded

    def test_pinned_stale_line_is_unstuck(self, world, scrubber):
        warm(world)
        # pin a line, then change the configuration under it
        spec = FaultSpec("cache_stale_pin", 0, module="inst")
        FaultInjector(world, world.backing, spec).on_event(0)
        world.apply(Event("deny_inst", domain=1, inst=0))
        report = scrubber.scrub()
        assert report.cache_detections  # the pinned line went stale
        # unpinned + flushed: the next scrub sees a coherent cache layer
        assert scrubber.scrub().clean

    def test_bypass_divergence_detected(self, world, scrubber):
        warm(world)
        spec = FaultSpec("bypass_corrupt", 0, bit=1, bit_op="flip")
        FaultInjector(world, world.backing, spec).on_event(0)
        report = scrubber.scrub()
        assert any("bypass" in d for d in report.cache_detections)

    def test_stale_draco_tuple_detected(self, world, scrubber):
        warm(world)
        draco = world.pcu.draco
        assert draco is not None and len(draco)
        # flip the allow bit under a proven tuple, mirrors included, so
        # only the Draco pass can notice
        domain = world.slot_ids[1]
        world.pcu.hpt.deny_instruction(domain, world.backend.inst_class(0))
        report = scrubber.scrub(repair=False)
        assert any("Draco" in d for d in report.cache_detections)


class TestStackIntegrity:
    def test_live_frame_corruption_is_unrepairable(self, world, scrubber):
        warm(world)  # one live frame would be nice: hccall pushes none
        world.apply(Event("register_gate", gate=1, domain=2))
        world.apply(Event("gate", kind="hccalls", gate=1, address=0x9004))
        assert world.pcu.trusted_stack.depth == 1
        address = world.pcu.registers.hcsb  # return-address word, live
        world.backing.mutate_word(address, 5, "flip")
        report = scrubber.scrub()
        assert report.unrepairable
        with pytest.raises(IntegrityFault):
            scrubber.scrub_or_halt()

    def test_dead_frame_corruption_is_invisible(self, world, scrubber):
        warm(world)
        regs = world.pcu.registers
        assert world.pcu.trusted_stack.depth == 0
        world.backing.mutate_word(regs.hcsb, 5, "flip")  # above hcsp: dead
        assert scrubber.scrub().clean

    def test_popped_corruption_leaves_sticky_residue(self, world, scrubber):
        warm(world)
        world.apply(Event("register_gate", gate=1, domain=2))
        world.apply(Event("gate", kind="hccalls", gate=1, address=0x9004))
        world.backing.mutate_word(world.pcu.registers.hcsb, 5, "flip")
        # return: the pop folds the *corrupt* value into the digest, so
        # the residue persists even though the frame is now dead
        world.apply(Event("gate", kind="hcrets", gate=1, address=0x9004))
        assert world.pcu.trusted_stack.depth == 0
        report = scrubber.scrub()
        assert report.unrepairable
