"""Tenant-churn campaigns: recycle-window faults, determinism, sharding.

Small streams throughout (a few hundred ops, a dozen slots) — the churn
machinery scales with the op count, so tiny runs exercise the same
bind/evict/recycle traffic, fault windows and classification ladder as
the shipped ``results/churn_campaigns.json``.
"""

import json

import pytest

from repro.conformance import CONFORMANCE_CONFIGS, ConformanceWorld, make_backend
from repro.faults import (
    CHURN_FAULT_KINDS,
    CLASSIFICATIONS,
    ChurnWorld,
    FaultInjector,
    FaultPlan,
    FaultyWordBacking,
    run_churn_campaign,
    run_churn_campaigns,
    write_churn_report,
)
from repro.workloads import generate_churn_ops

N_OPS = 250
SLOTS = 12

RECYCLE_KINDS = ("recycle_store_fault", "generation_flip", "drop_reuse_flush")


class TestChurnWorld:
    def test_fault_free_stream_never_diverges(self):
        world = ChurnWorld(make_backend("riscv"), max_slots=SLOTS)
        trace = generate_churn_ops(3, N_OPS, 5, 5)
        for index, op in enumerate(trace.ops):
            for cached, oracle in world.apply(op, index):
                assert cached == oracle, (index, op, cached, oracle)
        # The stream actually exercised the virtualizer where it hurts.
        stats = world.virtualizer.stats
        assert stats.spawned > SLOTS  # more tenants than slots
        assert stats.recycles > 0
        assert stats.evictions > 0
        assert world.checks_run > 0

    def test_saturation_backpressure_not_crash(self):
        """A slot pool smaller than the live-tenant floor must degrade
        (slot_exhausted counts, visits abort) rather than crash."""
        world = ChurnWorld(make_backend("x86"), max_slots=4)
        trace = generate_churn_ops(1, N_OPS, 5, 5)
        for index, op in enumerate(trace.ops):
            for cached, oracle in world.apply(op, index):
                assert cached == oracle
        assert world.virtualizer.stats.slot_exhausted > 0


class TestChurnPlan:
    def test_specs_cycle_through_the_churn_kinds(self):
        plan = FaultPlan(0)
        kinds = [plan.draw_churn_specs(campaign, N_OPS)[0].kind
                 for campaign in range(len(CHURN_FAULT_KINDS))]
        assert kinds == list(CHURN_FAULT_KINDS)

    def test_draws_are_deterministic_per_campaign(self):
        a = FaultPlan(9).draw_churn_specs(4, N_OPS)
        b = FaultPlan(9).draw_churn_specs(4, N_OPS)
        assert [s.to_dict() for s in a] == [s.to_dict() for s in b]

    def test_recycle_window_kinds_are_widening(self):
        plan = FaultPlan(0)
        for campaign, kind in enumerate(CHURN_FAULT_KINDS):
            spec = plan.draw_churn_specs(campaign, N_OPS)[0]
            if kind in RECYCLE_KINDS:
                assert spec.widening, kind


class TestRecycleWindowFaults:
    @pytest.mark.parametrize("kind", RECYCLE_KINDS)
    def test_kind_fires_and_never_widens_silently(self, kind):
        campaign = CHURN_FAULT_KINDS.index(kind)
        spec = FaultPlan(0).draw_churn_specs(campaign, N_OPS)[0]
        assert spec.kind == kind
        result = run_churn_campaign("riscv", spec, stream_seed=campaign,
                                    n_ops=N_OPS, max_slots=SLOTS,
                                    campaign=campaign)
        assert result.classification in CLASSIFICATIONS
        assert not (result.classification == "silent_divergence"
                    and result.widening), result.detail

    def test_injector_notes_missing_virtualizer(self):
        """The recycle-window kinds degrade gracefully on worlds without
        a DomainVirtualizer (e.g. a conformance world)."""
        world = ConformanceWorld(make_backend("riscv"),
                                 CONFORMANCE_CONFIGS["stress"])
        backing = FaultyWordBacking(world.trusted_memory._backing)
        world.trusted_memory._backing = backing
        spec = FaultPlan(0).draw_churn_specs(0, N_OPS)[0]
        injector = FaultInjector(world, backing, spec)
        injector.fire()
        assert not injector.fired
        assert "no domain virtualizer" in injector.detail


@pytest.fixture(scope="module")
def matrix():
    return run_churn_campaigns("riscv", 0, N_OPS, 4, max_slots=SLOTS)


class TestChurnMatrix:
    def test_campaigns_are_deterministic(self, matrix):
        again = run_churn_campaigns("riscv", 0, N_OPS, 4, max_slots=SLOTS)
        assert matrix.to_dict() == again.to_dict()

    def test_campaign_range_matches_full_run(self, matrix):
        """The sharding contract: running ``[lo, hi)`` alone reproduces
        exactly that slice of the full matrix."""
        part = run_churn_campaigns("riscv", 0, N_OPS, 4, max_slots=SLOTS,
                                   campaign_lo=2, campaign_hi=4)
        assert ([r.to_dict() for r in part.results]
                == [r.to_dict() for r in matrix.results[2:4]])

    def test_results_roundtrip_through_dicts(self, matrix):
        from repro.faults import ChurnCampaignResult

        for result in matrix.results:
            encoded = json.loads(json.dumps(result.to_dict()))
            assert ChurnCampaignResult.from_dict(encoded).to_dict() \
                == result.to_dict()

    def test_report_payload_is_self_describing(self, matrix, tmp_path):
        from repro.contracts import CONTRACT_NAMES

        path = tmp_path / "churn.json"
        payload = write_churn_report([matrix], str(path))
        assert payload["format"] == "isagrid-churn-campaign-v1"
        assert payload["logical_domains"] == matrix.logical_domains > 0
        assert payload["unwaived_contract_violations"] == 0
        assert set(payload["contract_counts"]) == set(CONTRACT_NAMES)
        assert set(payload["latency_percentiles"]) == {"p50", "p99"}
        with open(path) as handle:
            assert json.load(handle) == payload


class TestOrchestration:
    def test_jobs_2_report_is_byte_identical_to_serial(self, tmp_path,
                                                       matrix):
        from repro.orchestrator import orchestrate_churn

        serial_path = tmp_path / "serial.json"
        write_churn_report([matrix], str(serial_path))
        matrices, run, _ = orchestrate_churn(
            ["riscv"], 0, N_OPS, 4, jobs=2, max_slots=SLOTS,
            run_dir=str(tmp_path / "run"))
        assert run.complete
        parallel_path = tmp_path / "parallel.json"
        write_churn_report(matrices, str(parallel_path))
        assert serial_path.read_bytes() == parallel_path.read_bytes()
