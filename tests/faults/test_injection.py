"""Fault plans and the injector: determinism, coverage, mechanisms."""

import pytest

from repro.conformance import Event
from repro.core.errors import InjectedFault
from repro.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultyWordBacking,
)


class TestFaultPlan:
    def test_plans_are_deterministic(self):
        a = [FaultPlan(7).draw(i, 1000) for i in range(20)]
        b = [FaultPlan(7).draw(i, 1000) for i in range(20)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [FaultPlan(1).draw(i, 1000) for i in range(20)]
        b = [FaultPlan(2).draw(i, 1000) for i in range(20)]
        assert a != b

    def test_kinds_cycle_over_full_surface(self):
        plan = FaultPlan(0)
        kinds = {plan.draw(i, 1000).kind for i in range(len(FAULT_KINDS))}
        assert kinds == set(FAULT_KINDS)

    def test_trigger_lands_in_fuzz_body(self):
        for campaign in range(30):
            spec = FaultPlan(3).draw(campaign, 2000)
            assert 16 <= spec.trigger < 1500

    def test_spec_roundtrips_through_dict(self):
        spec = FaultPlan(5).draw(4, 500)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_widening_classification(self):
        # Coherence/atomicity/gate/stack faults widen regardless of
        # direction; plain bitmap faults widen unless they only clear.
        assert FaultSpec("drop_invalidate", 10, bit_op="clear").widening
        assert FaultSpec("store_fault", 10, bit_op="clear").widening
        assert FaultSpec("hpt_inst_bit", 10, bit_op="set").widening
        assert not FaultSpec("hpt_inst_bit", 10, bit_op="clear").widening


class TestFaultyWordBacking:
    def test_passthrough(self, world):
        address = world.trusted_memory.base
        world.trusted_memory.store_word(address, 0xDEAD)
        assert world.trusted_memory.load_word(address) == 0xDEAD

    def test_store_fault_is_one_shot(self, world):
        address = world.trusted_memory.base
        world.backing.arm_store_fault()
        with pytest.raises(InjectedFault):
            world.trusted_memory.store_word(address, 1)
        world.trusted_memory.store_word(address, 2)  # disarmed
        assert world.trusted_memory.load_word(address) == 2
        assert world.backing.store_faults_fired == 1

    def test_mutate_word_bypasses_mirrors(self, world):
        from repro.conformance import Event
        world.apply(Event("allow_inst", domain=1, inst=0))
        hpt = world.pcu.hpt
        domain = world.slot_ids[1]
        address = hpt.inst_word_address(domain, 0)
        before = world.trusted_memory.load_word(address)
        assert world.backing.mutate_word(address, 0, "flip")
        assert world.trusted_memory.load_word(address) == before ^ 1
        # the software mirror did not see the flip — that is the point
        assert hpt._inst[domain].word(0) == before

    def test_mutate_word_reports_no_change(self, world):
        address = world.trusted_memory.base
        world.trusted_memory.store_word(address, 0b1)
        assert not world.backing.mutate_word(address, 0, "set")


class TestFaultInjector:
    def _inject(self, world, spec, warm=True):
        if warm:  # enter slot 1 and run a check so caches/bypass load
            world.apply(Event("allow_inst", domain=1, inst=0))
            world.apply(Event("register_gate", gate=0, domain=1))
            world.apply(Event("gate", kind="hccall", gate=0))
            world.apply(Event("check", inst=0))
        injector = FaultInjector(world, world.backing, spec)
        injector.on_event(spec.trigger - 1)  # off-trigger: no-op
        assert not injector.fired
        injector.on_event(spec.trigger)
        return injector

    def test_hpt_inst_bit_changes_memory(self, world):
        world.apply(Event("allow_inst", domain=1, inst=0))
        spec = FaultSpec("hpt_inst_bit", 5, domain_slot=1, resource=1,
                         bit_op="flip")
        injector = self._inject(world, spec, warm=False)
        assert injector.fired
        domain = world.slot_ids[1]
        hpt = world.pcu.hpt
        assert (hpt.read_inst_word(domain, 0)
                != hpt._inst[domain].word(0))

    def test_sgt_valid_bit_fault(self, world):
        spec = FaultSpec("sgt_word", 5, resource=0, bit=3, bit_op="flip")
        injector = self._inject(world, spec)
        assert injector.fired
        assert "word 3" in injector.detail

    def test_cache_corrupt_hits_resident_line(self, world):
        spec = FaultSpec("cache_corrupt", 5, module="inst", bit_op="flip")
        injector = self._inject(world, spec)
        assert injector.fired

    def test_cache_corrupt_on_empty_cache_is_benign(self, world):
        spec = FaultSpec("cache_corrupt", 5, module="inst", bit_op="flip")
        injector = FaultInjector(world, world.backing, spec)
        injector.on_event(5)
        assert not injector.fired and "empty" in injector.detail

    def test_stale_pin_survives_invalidation(self, world):
        spec = FaultSpec("cache_stale_pin", 5, module="inst")
        injector = self._inject(world, spec)
        assert injector.fired
        cache = world.pcu.hpt_cache.inst
        tags = cache.tags()
        world.pcu.invalidate_privileges()  # full sweep
        assert set(cache.tags()) & set(tags)  # the pinned line survived

    def test_drop_invalidate_swallows_one_sweep(self, world):
        spec = FaultSpec("drop_invalidate", 5)
        injector = self._inject(world, spec)
        assert not injector.fired  # armed, not yet fired
        cache = world.pcu.hpt_cache.inst
        assert len(cache)
        world.pcu.invalidate_privileges()  # swallowed
        assert injector.fired
        assert len(cache)  # nothing was invalidated
        world.pcu.invalidate_privileges()  # restored: sweeps again
        assert not len(cache)

    def test_bypass_corrupt_flips_loaded_word(self, world):
        spec = FaultSpec("bypass_corrupt", 5, bit=2, bit_op="flip")
        injector = self._inject(world, spec)
        assert injector.fired
        domain = world.pcu.bypass.loaded_domain
        assert (world.pcu.bypass._words
                != world.pcu.hpt.read_inst_words(domain))

    def test_stack_word_detail_reports_liveness(self, world):
        spec = FaultSpec("stack_word", 5, resource=0, bit_op="flip")
        injector = self._inject(world, spec)
        assert injector.fired
        assert "stack word" in injector.detail
