"""Machine-level fault campaigns: lockstep, commit windows, determinism.

Everything here runs with tiny workloads (``iterations=2``/``3``) so the
full file stays a few seconds; geometry and triggers scale with the
workload, so small runs exercise the same machinery as the shipped
report.
"""

import json

import pytest

from repro.faults import (
    CLASSIFICATIONS,
    MACHINE_FAULT_KINDS,
    FaultPlan,
    machine_geometry,
    run_machine_campaigns,
    run_planned_machine_campaign,
    write_machine_report,
)

COMMIT_STORE = MACHINE_FAULT_KINDS.index("commit_store_fault")
COMMIT_FLIP = MACHINE_FAULT_KINDS.index("commit_flip_journalled")


class TestGeometry:
    def test_geometry_is_a_pure_function(self):
        a = machine_geometry("riscv", 3)
        b = machine_geometry("riscv", 3)
        assert a == b

    def test_geometry_scales_with_iterations(self):
        small = machine_geometry("riscv", 2)
        large = machine_geometry("riscv", 8)
        assert large.n_steps > small.n_steps
        assert large.budget > large.n_steps  # watchdog headroom

    def test_explicit_intervals_override_derived(self):
        g = machine_geometry("x86", 3, scrub_interval=999,
                             pulse_interval=400)
        assert g.scrub_interval == 999
        assert g.pulse_interval == 400


class TestSingleCampaign:
    def test_campaigns_are_deterministic(self):
        a = run_planned_machine_campaign("riscv", 7, 3, iterations=2)
        b = run_planned_machine_campaign("riscv", 7, 3, iterations=2)
        assert a.to_dict() == b.to_dict()

    @pytest.mark.parametrize("backend", ["riscv", "x86"])
    def test_commit_store_fault_rolls_back(self, backend):
        result = run_planned_machine_campaign(backend, 7, COMMIT_STORE,
                                              iterations=3)
        assert result.spec.kind == "commit_store_fault"
        assert result.fired
        assert result.rollbacks >= 1
        assert result.classification == "detected_recovered"
        assert "commit-window store fault" in result.detail
        assert result.commit_windows > 0

    @pytest.mark.parametrize("backend", ["riscv", "x86"])
    def test_commit_flip_is_repaired_by_rollback_replay(self, backend):
        result = run_planned_machine_campaign(backend, 7, COMMIT_FLIP,
                                              iterations=3)
        assert result.spec.kind == "commit_flip_journalled"
        assert result.rollbacks >= 1
        # The bit was flipped under an already-journalled word; the
        # newest-first replay must have overwritten it, so the run ends
        # recovered with a clean audit — not halted on raw corruption.
        assert "flipped under journalled word" in result.detail
        assert result.classification == "detected_recovered"

    def test_lockstep_oracle_is_actually_consulted(self):
        result = run_planned_machine_campaign("riscv", 7, 0, iterations=2)
        assert result.lockstep_checks > 0
        assert result.workload_halted

    def test_result_roundtrips_to_dict(self):
        result = run_planned_machine_campaign("x86", 7, 1, iterations=2)
        data = result.to_dict()
        json.dumps(data)
        assert data["classification"] == result.classification
        assert data["spec"]["kind"] == result.spec.kind
        from repro.faults import MachineCampaignResult
        assert MachineCampaignResult.from_dict(data).to_dict() == data


@pytest.fixture(scope="module")
def matrices():
    """One full kind-cycle matrix per backend, run once for the module.

    Both the matrix-shape tests and the jobs-vs-serial identity test
    consume these: machine campaign draws are campaign-local (see
    ``test_machine_plan_draws_are_campaign_local``), so a prefix of a
    full matrix doubles as the serial reference for a shorter sharded
    run — no second serial campaign sweep needed.
    """
    return {
        backend: run_machine_campaigns(backend, seed=7,
                                       n_campaigns=len(MACHINE_FAULT_KINDS),
                                       iterations=2)
        for backend in ("riscv", "x86")
    }


class TestMachineMatrix:
    @pytest.fixture(params=["riscv", "x86"])
    def matrix(self, request, matrices):
        return matrices[request.param]

    def test_no_widening_silent_divergence(self, matrix):
        assert matrix.widening_silent == []

    def test_full_kind_cycle_covered(self, matrix):
        assert ({r.spec.kind for r in matrix.results}
                == set(MACHINE_FAULT_KINDS))

    def test_classifications_valid_and_recovery_exercised(self, matrix):
        for result in matrix.results:
            assert result.classification in CLASSIFICATIONS
        assert matrix.rollbacks >= 1
        assert matrix.counts["detected_recovered"] > 0

    def test_reconfig_pulses_ran(self, matrix):
        assert all(r.pulses_run > 0 for r in matrix.results)

    def test_no_unwaived_contract_violations(self, matrix):
        # Every campaign runs monitored by default; any violation must
        # be attributable to the armed injector (waived), never free.
        assert all(r.unwaived_contract_violations == 0
                   for r in matrix.results)

    def test_report_written_with_rollback_count(self, matrix, tmp_path):
        path = str(tmp_path / "machine_report.json")
        payload = write_machine_report([matrix], path)
        with open(path) as handle:
            on_disk = json.load(handle)
        assert on_disk["format"] == "isagrid-machine-fault-campaign-v1"
        assert on_disk["reconfig_rollbacks"] == matrix.rollbacks >= 1
        assert payload["widening_silent_divergences"] == 0


class TestOrchestration:
    def test_jobs_identical_to_serial(self, tmp_path, matrices):
        # The serial reference is the first 4 campaigns of the already-
        # computed full matrices (campaign draws are campaign-local, so
        # a prefix is exactly what a 4-campaign serial run produces) —
        # this test only pays for the sharded side.
        from repro.orchestrator import orchestrate_machine_faults

        sharded, run, _ = orchestrate_machine_faults(
            ("riscv", "x86"), 7, 4, jobs=2, iterations=2,
            run_dir=str(tmp_path / "run"))
        assert run.quarantined == []
        assert [[r.to_dict() for r in m.results] for m in sharded] == \
            [[r.to_dict() for r in matrices[backend].results[:4]]
             for backend in ("riscv", "x86")]

    def test_machine_plan_draws_are_campaign_local(self):
        # A worker must be able to draw campaign k without replaying
        # campaigns 0..k-1 — and the abstract plan stream must be
        # untouched by machine draws.
        plan = FaultPlan(7)
        geometry = machine_geometry("riscv", 2)
        direct = plan.draw_machine_specs(5, geometry.n_steps,
                                         geometry.n_pulses)
        abstract_after = plan.draw(0, 300)
        fresh = FaultPlan(7)
        assert fresh.draw_machine_specs(5, geometry.n_steps,
                                        geometry.n_pulses) == direct
        assert fresh.draw(0, 300) == abstract_after


class TestStateChangingPulses:
    """Satellite: the pulse rotation can genuinely move table state
    (scratch-domain spawn/retire) instead of always netting to a no-op.
    The flag defaults off so committed machine reports stay stable."""

    def test_default_path_is_unchanged_and_deterministic(self):
        a = run_planned_machine_campaign("x86", 7, 0, iterations=2)
        b = run_planned_machine_campaign("x86", 7, 0, iterations=2,
                                         state_changing_pulses=False)
        assert a.to_dict() == b.to_dict()

    def test_state_changing_rotation_actually_differs(self):
        neutral = run_planned_machine_campaign("x86", 7, 0, iterations=3)
        churny = run_planned_machine_campaign("x86", 7, 0, iterations=3,
                                              state_changing_pulses=True)
        assert churny.pulses_run > 0
        # Same geometry, same fault draws — only the pulse ops differ.
        assert churny.spec.to_dict() == neutral.spec.to_dict()
        assert churny.to_dict() != neutral.to_dict()

    @pytest.mark.parametrize("campaign", [0, 3])
    def test_state_changing_campaigns_classify_cleanly(self, campaign):
        result = run_planned_machine_campaign(
            "riscv", 5, campaign, iterations=2, state_changing_pulses=True)
        assert result.classification in CLASSIFICATIONS
        assert result.unwaived_contract_violations == 0
