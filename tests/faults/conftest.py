"""Shared fixtures: a faultable lockstep world (backing interposed)."""

import pytest

from repro.conformance import CONFORMANCE_CONFIGS, ConformanceWorld, make_backend
from repro.faults import FaultyWordBacking, IntegrityScrubber


@pytest.fixture
def world():
    """A riscv world under the draco config with a faultable backing."""
    world = ConformanceWorld(make_backend("riscv"), CONFORMANCE_CONFIGS["draco"])
    backing = FaultyWordBacking(world.trusted_memory._backing)
    world.trusted_memory._backing = backing
    world.backing = backing
    return world


@pytest.fixture
def scrubber(world):
    return IntegrityScrubber(world.pcu, world.manager)
