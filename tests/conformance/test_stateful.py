"""Stateful conformance: hypothesis drives the lockstep pair.

A :class:`RuleBasedStateMachine` interleaves domain create/config/
switch/destroy with privilege checks, gate chains and cache flush/
prefetch — hypothesis explores orderings the seeded fuzzer's fixed
weights never would, and shrinks any divergence to a minimal rule
sequence by itself.
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.conformance import CONFORMANCE_CONFIGS, ConformanceWorld, make_backend
from repro.conformance.events import (
    GATE_KINDS,
    MASK64,
    N_CSR_SLOTS,
    N_DOMAIN_SLOTS,
    N_GATE_SLOTS,
    N_INST_SLOTS,
    Event,
)

DOMAIN_SLOT = st.integers(min_value=1, max_value=N_DOMAIN_SLOTS)
INST_SLOT = st.integers(min_value=0, max_value=N_INST_SLOTS - 1)
CSR_SLOT = st.integers(min_value=0, max_value=N_CSR_SLOTS - 1)
#: One past the last registered slot, so unregistered gates get executed.
GATE_SLOT = st.integers(min_value=0, max_value=N_GATE_SLOTS)
VALUE = st.integers(min_value=0, max_value=MASK64)
BIT = st.integers(min_value=0, max_value=63)


class ConformancePair(RuleBasedStateMachine):
    """Every rule applies one abstract event to both implementations and
    requires identical architecturally-visible outcomes."""

    config_name = "stress"

    def __init__(self):
        super().__init__()
        self.world = ConformanceWorld(
            make_backend("riscv"), CONFORMANCE_CONFIGS[self.config_name])
        self.steps = 0

    def apply(self, event):
        self.steps += 1
        cached, oracle = self.world.apply(event)
        assert cached == oracle, (
            "divergence on %r: cached=%r oracle=%r" % (event, cached, oracle))

    # -- data path -----------------------------------------------------
    @rule(inst=INST_SLOT)
    def check_instruction(self, inst):
        self.apply(Event("check", inst=inst))

    @rule(inst=INST_SLOT, csr=CSR_SLOT, read=st.booleans(),
          write=st.booleans(), old=VALUE, flip=BIT)
    def check_csr_bit_flip(self, inst, csr, read, write, old, flip):
        self.apply(Event("check", inst=inst, csr=csr, read=read,
                         write=write or not read, old=old,
                         value=old ^ (1 << flip)))

    @rule(inst=INST_SLOT, csr=CSR_SLOT, old=VALUE, new=VALUE)
    def check_csr_wild_write(self, inst, csr, old, new):
        self.apply(Event("check", inst=inst, csr=csr, write=True,
                         old=old, value=new))

    @rule(kind=st.sampled_from(GATE_KINDS), gate=GATE_SLOT,
          site_ok=st.booleans())
    def gate(self, kind, gate, site_ok):
        self.apply(Event("gate", kind=kind, gate=gate, site_ok=site_ok,
                         address=0x9000 + 8 * self.steps))

    @rule(inside=st.booleans(), offset=st.integers(0, (1 << 20) - 8))
    def memory_access(self, inside, offset):
        base = 0x100000 if inside else 0x300000
        self.apply(Event("mem", address=base + offset))

    # -- cache management ----------------------------------------------
    @rule(csr=st.integers(min_value=-1, max_value=N_CSR_SLOTS - 1))
    def prefetch(self, csr):
        self.apply(Event("pfch", csr=csr))

    @rule(cache=st.integers(min_value=0, max_value=4))
    def flush(self, cache):
        self.apply(Event("pflh", cache=cache))

    # -- domain-0 reconfiguration --------------------------------------
    @rule(domain=DOMAIN_SLOT, inst=INST_SLOT)
    def allow_instruction(self, domain, inst):
        self.apply(Event("allow_inst", domain=domain, inst=inst))

    @rule(domain=DOMAIN_SLOT, inst=INST_SLOT)
    def deny_instruction(self, domain, inst):
        self.apply(Event("deny_inst", domain=domain, inst=inst))

    @rule(domain=DOMAIN_SLOT, csr=CSR_SLOT, read=st.booleans(),
          write=st.booleans())
    def grant_csr(self, domain, csr, read, write):
        self.apply(Event("grant_csr", domain=domain, csr=csr,
                         read=read, write=write))

    @rule(domain=DOMAIN_SLOT, csr=CSR_SLOT, read=st.booleans())
    def revoke_csr(self, domain, csr, read):
        self.apply(Event("revoke_csr", domain=domain, csr=csr,
                         read=read, write=True))

    @rule(domain=DOMAIN_SLOT, bits=VALUE)
    def set_mask(self, domain, bits):
        self.apply(Event("set_mask", domain=domain, bits=bits))

    @rule(gate=st.integers(min_value=0, max_value=N_GATE_SLOTS - 1),
          domain=DOMAIN_SLOT)
    def register_gate(self, gate, domain):
        self.apply(Event("register_gate", gate=gate, domain=domain))

    @rule(gate=st.integers(min_value=0, max_value=N_GATE_SLOTS - 1))
    def unregister_gate(self, gate):
        self.apply(Event("unregister_gate", gate=gate))

    @rule(domain=DOMAIN_SLOT)
    def destroy_domain(self, domain):
        self.apply(Event("destroy_domain", domain=domain))

    @rule(domain=DOMAIN_SLOT)
    def create_domain(self, domain):
        self.apply(Event("create_domain", domain=domain))

    # -- lockstep invariants -------------------------------------------
    @invariant()
    def state_agrees(self):
        world = self.world
        assert world.pcu.current_domain == world.oracle.domain
        assert world.pcu.previous_domain == world.oracle.pdomain
        assert world.pcu.trusted_stack.depth == world.oracle.depth


class DracoConformancePair(ConformancePair):
    """Same machine over the Draco known-legal cache, whose stale
    proven-legal tuples are the nastiest staleness source."""

    config_name = "draco"


class FlushOnSwitchConformancePair(ConformancePair):
    """Same machine with flush-on-switch (Section 8 trade-off)."""

    config_name = "flush"


TestConformancePair = ConformancePair.TestCase
TestConformancePair.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)

TestDracoConformancePair = DracoConformancePair.TestCase
TestDracoConformancePair.settings = settings(
    max_examples=15, stateful_step_count=40, deadline=None)

TestFlushOnSwitchConformancePair = FlushOnSwitchConformancePair.TestCase
TestFlushOnSwitchConformancePair.settings = settings(
    max_examples=10, stateful_step_count=30, deadline=None)
