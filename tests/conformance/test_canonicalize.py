"""Slot-id canonicalization: reproducer dedup by first-use renaming."""

from repro.conformance import (
    DifferentialRunner,
    Event,
    canonicalize_events,
    generate_events,
    stream_key,
)
from repro.conformance.events import MASKED_CSR_SLOT, N_GATE_SLOTS


class TestCanonicalization:
    def test_idempotent(self):
        events = generate_events(4, 250)
        once = canonicalize_events(events)
        assert canonicalize_events(once) == once

    def test_first_use_order(self):
        events = [
            Event("allow_inst", domain=3, inst=4),
            Event("allow_inst", domain=1, inst=2),
            Event("check", inst=4),
        ]
        canonical = canonicalize_events(events)
        # domain 3 appeared first -> 1; domain 1 -> 2; inst 4 -> 0 etc.
        assert [e.domain for e in canonical] == [1, 2, 0]
        assert [e.inst for e in canonical] == [0, 1, 0]

    def test_slot_twins_map_to_one_stream(self):
        a = [Event("allow_inst", domain=2, inst=3),
             Event("grant_csr", domain=2, csr=1, read=True)]
        b = [Event("allow_inst", domain=4, inst=1),
             Event("grant_csr", domain=4, csr=2, read=True)]
        assert canonicalize_events(a) == canonicalize_events(b)
        assert stream_key(a) == stream_key(b)

    def test_distinct_structures_keep_distinct_keys(self):
        a = [Event("allow_inst", domain=1, inst=0)]
        b = [Event("deny_inst", domain=1, inst=0)]
        assert stream_key(a) != stream_key(b)

    def test_masked_csr_slot_is_pinned(self):
        events = [Event("grant_csr", domain=1, csr=MASKED_CSR_SLOT,
                        read=True)]
        assert canonicalize_events(events)[0].csr == MASKED_CSR_SLOT

    def test_hostile_gate_ids_untouched(self):
        events = [Event("gate", kind="hccall", gate=N_GATE_SLOTS + 1)]
        assert canonicalize_events(events)[0].gate == N_GATE_SLOTS + 1

    def test_domain0_never_renamed(self):
        events = [Event("check", inst=0), Event("mem", address=0x100008)]
        canonical = canonicalize_events(events)
        assert all(e.domain == 0 for e in canonical)

    def test_canonical_stream_still_replays_clean(self):
        events = canonicalize_events(generate_events(6, 300))
        assert DifferentialRunner("riscv").replay(events) is None

    def test_canonical_twin_reproduces_slot_symmetric_bug(self):
        # A coherence bug hits whichever slots the stream uses, so the
        # renamed twin must still reproduce it.  (Slot-*asymmetric* bugs
        # may stop reproducing — fuzz_backend re-replays the canonical
        # stream and falls back to the original dump in that case.)
        def suppress(pcu):
            pcu.invalidate_privileges = lambda *args, **kwargs: None

        events = generate_events(0, 400)
        runner = DifferentialRunner("riscv", mutate=suppress)
        divergence = runner.replay(events)
        assert divergence is not None
        shrunk = runner.shrink(events, divergence)
        canonical = canonicalize_events(shrunk)
        assert runner.replay(canonical) is not None
