"""Shared fixtures: lockstep (cached PCU, oracle) worlds."""

import pytest

from repro.conformance import CONFORMANCE_CONFIGS, ConformanceWorld, make_backend


@pytest.fixture
def world():
    """A riscv world under the 2-entry stress config (worst for staleness)."""
    return ConformanceWorld(make_backend("riscv"), CONFORMANCE_CONFIGS["stress"])
