"""The oracle PCU: the cache-free executable spec, tested on its own.

These tests pin the oracle's semantics directly — fault subclasses,
gate ordering, trusted-stack behaviour — so a differential-run failure
can always be attributed to the cached implementation, not to a drifting
spec.
"""

import pytest

from repro.conformance.generator import destination_address, gate_address
from repro.core import (
    AccessInfo,
    BitMaskViolationFault,
    ConfigurationError,
    GateFault,
    GateKind,
    InstructionPrivilegeFault,
    RegisterReadFault,
    RegisterWriteFault,
    TrustedMemoryFault,
    TrustedStackFault,
)
from repro.core.pcu import DOMAIN_0

#: riscv backend slot bindings (see make_backend): instruction slot 2 is
#: the "csr" class, CSR slot 4 is the bitwise-controlled sstatus.
CSR_CLASS_SLOT = 2
MASKED_SLOT = 4


def access(world, inst_slot, csr_slot=None, read=False, write=False,
           old=0, new=0):
    backend = world.backend
    return AccessInfo(
        inst_class=backend.inst_class(inst_slot),
        csr=None if csr_slot is None else backend.csr_index(csr_slot),
        csr_read=read,
        csr_write=write,
        write_value=new if write else None,
        old_value=old if write else None,
    )


class TestInstructionCheck:
    def test_domain0_always_passes(self, world):
        for slot in range(len(world.backend.inst_slots)):
            world.oracle.check(access(world, slot))  # no fault

    def test_fresh_domain_has_no_privileges(self, world):
        world.oracle.domain = world.slot_ids[1]
        with pytest.raises(InstructionPrivilegeFault):
            world.oracle.check(access(world, 0))

    def test_grant_is_visible_immediately(self, world):
        domain = world.slot_ids[1]
        world.manager.allow_instructions(domain, [world.backend.inst_name(0)])
        world.oracle.domain = domain
        world.oracle.check(access(world, 0))
        with pytest.raises(InstructionPrivilegeFault):
            world.oracle.check(access(world, 1))

    def test_deny_is_visible_immediately(self, world):
        domain = world.slot_ids[1]
        world.manager.allow_instructions(domain, [world.backend.inst_name(0)])
        world.oracle.domain = domain
        world.oracle.check(access(world, 0))
        world.manager.deny_instruction(domain, world.backend.inst_name(0))
        with pytest.raises(InstructionPrivilegeFault):
            world.oracle.check(access(world, 0))


class TestCsrCheck:
    @pytest.fixture
    def domain(self, world):
        domain = world.slot_ids[1]
        world.manager.allow_instructions(
            domain, [world.backend.inst_name(CSR_CLASS_SLOT)])
        world.oracle.domain = domain
        return domain

    def test_read_needs_read_bit(self, world, domain):
        with pytest.raises(RegisterReadFault):
            world.oracle.check(access(world, CSR_CLASS_SLOT, 0, read=True))
        world.manager.grant_register(domain, world.backend.csr_name(0),
                                     read=True)
        world.oracle.check(access(world, CSR_CLASS_SLOT, 0, read=True))

    def test_plain_write_needs_write_bit(self, world, domain):
        world.manager.grant_register(domain, world.backend.csr_name(0),
                                     read=True)
        with pytest.raises(RegisterWriteFault):
            world.oracle.check(access(world, CSR_CLASS_SLOT, 0, write=True,
                                      old=0, new=1))
        world.manager.grant_register(domain, world.backend.csr_name(0),
                                     write=True)
        world.oracle.check(access(world, CSR_CLASS_SLOT, 0, write=True,
                                  old=0, new=1))

    def test_masked_csr_uses_mask_not_write_bit(self, world, domain):
        csr_name = world.backend.csr_name(MASKED_SLOT)
        world.manager.set_register_mask(domain, csr_name, 0b1010)
        world.oracle.check(access(world, CSR_CLASS_SLOT, MASKED_SLOT,
                                  write=True, old=0b0000, new=0b1010))
        with pytest.raises(BitMaskViolationFault):
            world.oracle.check(access(world, CSR_CLASS_SLOT, MASKED_SLOT,
                                      write=True, old=0b0000, new=0b0100))

    def test_identity_write_always_within_mask(self, world, domain):
        value = 0xDEAD_BEEF
        world.oracle.check(access(world, CSR_CLASS_SLOT, MASKED_SLOT,
                                  write=True, old=value, new=value))

    def test_masked_csr_read_still_uses_read_bit(self, world, domain):
        world.manager.set_register_mask(
            domain, world.backend.csr_name(MASKED_SLOT), (1 << 64) - 1)
        with pytest.raises(RegisterReadFault):
            world.oracle.check(access(world, CSR_CLASS_SLOT, MASKED_SLOT,
                                      read=True))

    def test_masked_write_requires_values(self, world, domain):
        info = AccessInfo(
            inst_class=world.backend.inst_class(CSR_CLASS_SLOT),
            csr=world.backend.csr_index(MASKED_SLOT),
            csr_write=True,
        )
        with pytest.raises(ConfigurationError):
            world.oracle.check(info)


class TestGates:
    @pytest.fixture
    def gated(self, world):
        """Gate 0 registered into domain slot 1 at its frozen address."""
        world.manager.register_gate(gate_address(0), destination_address(0),
                                    world.slot_ids[1], gate_id=0)
        return world

    def test_hccall_switches_domain(self, gated):
        target = gated.oracle.execute_gate(GateKind.HCCALL, 0,
                                           gate_address(0))
        assert target == destination_address(0)
        assert gated.oracle.domain == gated.slot_ids[1]
        assert gated.oracle.pdomain == DOMAIN_0
        assert gated.oracle.depth == 0  # hccall does not push

    def test_wrong_call_site_faults(self, gated):
        with pytest.raises(GateFault) as excinfo:
            gated.oracle.execute_gate(GateKind.HCCALL, 0, gate_address(0) + 8)
        assert type(excinfo.value) is GateFault
        assert gated.oracle.domain == DOMAIN_0  # no switch happened

    def test_unregistered_gate_faults(self, gated):
        with pytest.raises(GateFault):
            gated.oracle.execute_gate(GateKind.HCCALL, 5, gate_address(5))

    def test_hccalls_pushes_and_hcrets_pops(self, world):
        first = world.slot_ids[1]
        world.manager.register_gate(gate_address(0), destination_address(0),
                                    first, gate_id=0)
        world.manager.register_gate(gate_address(1), destination_address(1),
                                    world.slot_ids[2], gate_id=1)
        world.oracle.execute_gate(GateKind.HCCALLS, 0, gate_address(0),
                                  return_address=0x9000)
        world.oracle.execute_gate(GateKind.HCCALLS, 1, gate_address(1),
                                  return_address=0x9008)
        assert world.oracle.depth == 2
        assert world.oracle.execute_gate(GateKind.HCRETS, -1, 0x5000) == 0x9008
        assert world.oracle.domain == first
        assert world.oracle.depth == 1

    def test_hccalls_requires_return_address(self, gated):
        with pytest.raises(ConfigurationError):
            gated.oracle.execute_gate(GateKind.HCCALLS, 0, gate_address(0))

    def test_overflow_rejected_before_any_mutation(self, world):
        domain = world.slot_ids[1]
        world.manager.register_gate(gate_address(0), destination_address(0),
                                    domain, gate_id=0)
        world.oracle.domain = domain  # frames carry a non-zero caller
        for i in range(world.oracle.stack_frames):
            world.oracle.execute_gate(GateKind.HCCALLS, 0, gate_address(0),
                                      return_address=0x9000 + 8 * i)
        depth = world.oracle.depth
        with pytest.raises(TrustedStackFault) as excinfo:
            world.oracle.execute_gate(GateKind.HCCALLS, 0, gate_address(0),
                                      return_address=0x9999)
        assert type(excinfo.value) is TrustedStackFault
        assert world.oracle.depth == depth       # nothing pushed
        assert world.oracle.domain == domain     # no switch happened

    def test_underflow_faults_exactly(self, world):
        with pytest.raises(TrustedStackFault) as excinfo:
            world.oracle.execute_gate(GateKind.HCRETS, -1, 0x5000)
        assert type(excinfo.value) is TrustedStackFault

    def test_return_to_domain0_banned_but_frame_consumed(self, gated):
        # hccalls from domain-0 records a domain-0 caller frame; the later
        # hcrets must refuse the return yet still pop the frame (matching
        # the real PCU's pop-then-check ordering).
        gated.oracle.execute_gate(GateKind.HCCALLS, 0, gate_address(0),
                                  return_address=0x9000)
        assert gated.oracle.depth == 1
        with pytest.raises(GateFault):
            gated.oracle.execute_gate(GateKind.HCRETS, -1, 0x5000)
        assert gated.oracle.depth == 0


class TestMemoryAndReset:
    def test_domain0_may_touch_trusted_memory(self, world):
        world.oracle.check_memory_access(world.trusted_memory.base)

    def test_other_domains_rejected(self, world):
        world.oracle.domain = world.slot_ids[1]
        with pytest.raises(TrustedMemoryFault):
            world.oracle.check_memory_access(world.trusted_memory.base)
        world.oracle.check_memory_access(0x4000)  # outside is unrestricted

    def test_disabled_oracle_checks_nothing(self, world):
        world.oracle.domain = world.slot_ids[1]
        world.oracle.enabled = False
        world.oracle.check_memory_access(world.trusted_memory.base)
        world.oracle.check(access(world, 0))

    def test_reset(self, world):
        world.oracle.domain = world.slot_ids[1]
        world.oracle._push(0x9000, 1)
        world.oracle.reset()
        assert world.oracle.domain == DOMAIN_0
        assert world.oracle.pdomain == DOMAIN_0
        assert world.oracle.depth == 0
