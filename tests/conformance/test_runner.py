"""The differential runner: clean runs, mutation smoke checks, shrinking.

The mutation smoke checks are the acceptance test of the whole
subsystem: an intentionally injected cache-fill bug (and, separately, a
suppressed coherence sweep) must produce a divergence, shrink to a small
reproducer, and round-trip through the JSON dump.
"""

import json

import pytest

from repro.conformance import (
    BACKEND_NAMES,
    CONFORMANCE_CONFIGS,
    ConformanceWorld,
    DifferentialRunner,
    Event,
    fuzz_backend,
    generate_events,
    load_reproducer,
    make_backend,
)


def corrupt_inst_fills(pcu):
    """The canonical injected bug: every instruction-bitmap cache fill
    flips the allow-bit of class 0."""
    cache = pcu.hpt_cache.inst
    original = cache.fill
    cache.fill = lambda tag, payload: original(tag, payload ^ 1)


def suppress_invalidation(pcu):
    """A coherence bug: reconfiguration never sweeps the caches, so
    stale fills outlive the HPT edits they contradict."""
    pcu.invalidate_privileges = lambda *args, **kwargs: None


class TestEventStreams:
    def test_generation_is_deterministic(self):
        assert generate_events(11, 200) == generate_events(11, 200)
        assert generate_events(11, 200) != generate_events(12, 200)

    def test_events_roundtrip_through_json(self):
        for event in generate_events(5, 150):
            encoded = json.loads(json.dumps(event.to_dict()))
            assert Event.from_dict(encoded) == event


class TestCleanRuns:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("config", ("stress", "draco", "flush"))
    def test_zero_divergences(self, backend, config):
        result = fuzz_backend(backend, seed=1, count=600, config=config)
        assert result.clean, result.divergence.describe()
        assert result.outcomes.get("ok", 0) > 0
        assert any(key.endswith("Fault") for key in result.outcomes)

    def test_cross_isa_outcomes_identical(self):
        """One abstract stream must produce the same outcome sequence on
        both backends — the privilege model is ISA-independent."""
        events = generate_events(3, 400)
        statuses = {}
        for name in BACKEND_NAMES:
            world = ConformanceWorld(make_backend(name),
                                     CONFORMANCE_CONFIGS["stress"])
            outcomes = [world.apply(event) for event in events]
            for cached, oracle in outcomes:
                assert cached == oracle
            statuses[name] = [oracle.status for _, oracle in outcomes]
        assert statuses["riscv"] == statuses["x86"]

    def test_oracle_only_never_diverges(self):
        """--oracle-only replays the spec alone, even under a mutation."""
        runner = DifferentialRunner("riscv", config="stress",
                                    mutate=corrupt_inst_fills,
                                    oracle_only=True)
        assert runner.replay(generate_events(0, 300),
                             count_outcomes=True) is None
        assert sum(runner.outcomes.values()) == len(generate_events(0, 300))


class TestMutationSmoke:
    def test_cache_fill_corruption_is_caught(self, tmp_path):
        result = fuzz_backend("riscv", 0, 400, config="stress",
                              mutate=corrupt_inst_fills,
                              dump_dir=str(tmp_path))
        assert not result.clean
        assert result.divergence.cached.status != result.divergence.oracle.status
        assert result.reproducer_path is not None

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_corruption_caught_on_both_backends(self, backend):
        result = fuzz_backend(backend, 0, 400, config="stress",
                              mutate=corrupt_inst_fills)
        assert not result.clean

    def test_suppressed_invalidation_is_caught(self):
        result = fuzz_backend("riscv", 0, 400, config="stress",
                              mutate=suppress_invalidation)
        assert not result.clean

    def test_shrink_produces_smaller_diverging_stream(self):
        events = generate_events(0, 400)
        runner = DifferentialRunner("riscv", config="stress",
                                    mutate=corrupt_inst_fills)
        divergence = runner.replay(events)
        assert divergence is not None
        shrunk = runner.shrink(events, divergence)
        assert len(shrunk) < len(events)
        assert runner.replay(shrunk) is not None
        # the stream really is minimal-ish: the bug needs a handful of
        # events (configure, enter a domain, check), not hundreds
        assert len(shrunk) <= divergence.index + 1

    def test_reproducer_roundtrip(self, tmp_path):
        result = fuzz_backend("riscv", 0, 400, config="stress",
                              mutate=corrupt_inst_fills,
                              dump_dir=str(tmp_path))
        backend, config, events = load_reproducer(result.reproducer_path)
        assert (backend, config) == ("riscv", "stress")
        # the dumped stream still diverges under the mutation...
        mutated = DifferentialRunner(backend, config=config,
                                     mutate=corrupt_inst_fills)
        assert mutated.replay(events) is not None
        # ...and is clean on the unmutated implementation
        assert DifferentialRunner(backend, config=config).replay(events) is None

    def test_reproducer_payload_is_self_describing(self, tmp_path):
        result = fuzz_backend("riscv", 0, 400, config="stress",
                              mutate=corrupt_inst_fills,
                              dump_dir=str(tmp_path))
        with open(result.reproducer_path) as handle:
            payload = json.load(handle)
        assert payload["format"] == "isagrid-conformance-repro-v1"
        assert payload["seed"] == 0
        assert len(payload["program"]) == len(payload["events"])
        assert payload["divergence"]["cached"] != payload["divergence"]["oracle"]

    def test_shrunk_divergence_doubles_as_contract_trace(self, tmp_path):
        """The ddmin-minimized reproducer is also dumped in the contract
        corpus vocabulary: replaying the trace alone (no simulator) must
        flag the same bug at the contract layer."""
        from repro.contracts import load_trace, replay_trace

        result = fuzz_backend("riscv", 0, 400, config="stress",
                              mutate=corrupt_inst_fills,
                              dump_dir=str(tmp_path))
        assert result.contract_trace_path is not None
        meta, events = load_trace(result.contract_trace_path)
        assert meta["format"] == "isagrid-contract-trace-v1"
        assert meta["stream_key"] == result.stream_key
        assert meta["divergence"] == result.divergence.describe()
        monitor = replay_trace(events, geometry=meta["geometry"])
        assert monitor.counts()["inst_retirement"] > 0
        assert monitor.unwaived_violations > 0
        # The trace path stays out of summary(): the --jobs N
        # byte-identity surface is unchanged by the extra artifact.
        assert "contract_trace_path" not in result.summary()

    def test_clean_runs_emit_no_contract_trace(self, tmp_path):
        result = fuzz_backend("riscv", 0, 300, config="stress",
                              dump_dir=str(tmp_path))
        assert result.clean
        assert result.contract_trace_path is None


class TestReconfigureCoherence:
    """Satellite regression: after any reconfigure, the cached PCU must
    agree with the oracle on the very next check (no stale fills)."""

    def _enter_slot1(self, world):
        world.apply(Event("register_gate", gate=0, domain=1))
        cached, oracle = world.apply(
            Event("gate", kind="hccall", gate=0, site_ok=True))
        assert cached == oracle and cached.status == "ok"

    def _check(self, world, expected_status):
        cached, oracle = world.apply(Event("check", inst=0))
        assert cached == oracle
        assert cached.status == expected_status

    def test_grant_after_cached_denial(self, world):
        self._enter_slot1(world)
        self._check(world, "InstructionPrivilegeFault")  # caches the denial
        world.apply(Event("allow_inst", domain=1, inst=0))
        self._check(world, "ok")  # the very next check sees the grant

    def test_deny_after_cached_grant(self, world):
        world.apply(Event("allow_inst", domain=1, inst=0))
        self._enter_slot1(world)
        self._check(world, "ok")  # caches the grant
        world.apply(Event("deny_inst", domain=1, inst=0))
        self._check(world, "InstructionPrivilegeFault")

    def test_destroyed_domain_grants_do_not_resurrect(self, world):
        world.apply(Event("allow_inst", domain=1, inst=0))
        self._enter_slot1(world)
        self._check(world, "ok")
        # kill the domain and recreate the slot: the fresh incarnation
        # starts de-privileged and no refill may say otherwise
        cached, oracle = world.apply(Event("destroy_domain", domain=1))
        assert cached == oracle and cached.status == "ok"
        world.apply(Event("create_domain", domain=1))
        self._enter_slot1(world)
        self._check(world, "InstructionPrivilegeFault")
