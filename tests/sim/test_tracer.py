"""The execution tracer."""

import pytest

from repro.riscv import KERNEL_BASE, assemble, build_riscv_system
from repro.sim import Tracer


def traced_system(source, *, capacity=4096, watch=None, with_isagrid=False,
                  setup=None):
    system = build_riscv_system(with_isagrid=with_isagrid)
    if setup:
        setup(system)
    program = assemble(source, base=KERNEL_BASE)
    system.load(program)
    tracer = Tracer(system.machine, capacity=capacity, watch=watch)
    system.run(program.symbol("entry"), max_steps=100_000)
    return system, tracer


class TestTracer:
    def test_records_every_instruction(self):
        system, tracer = traced_system("""
entry:
    li a0, 1
    li a1, 2
    add a0, a0, a1
    halt
""")
        assert tracer.total_records == 4
        assert tracer.records[-1].halted

    def test_ring_buffer_bounded(self):
        system, tracer = traced_system("""
entry:
    li t0, 100
loop:
    addi t0, t0, -1
    bnez t0, loop
    halt
""", capacity=16)
        assert tracer.total_records > 16
        assert len(tracer.records) == 16

    def test_memory_flags(self):
        system, tracer = traced_system("""
entry:
    li s0, 0x620000
    sd s0, 0(s0)
    ld a0, 0(s0)
    halt
""")
        stores = [r for r in tracer.records if r.is_store]
        loads = [r for r in tracer.records if r.is_load]
        assert stores[0].mem_address == 0x620000
        assert loads[0].mem_address == 0x620000

    def test_domains_visited_tracks_switches(self):
        system = build_riscv_system(with_isagrid=True)
        domain = system.manager.create_domain("kernel")
        system.manager.allow_all_instructions(domain.domain_id)
        program = assemble("""
entry:
    li t0, 0
g0:
    hccall t0
inside:
    halt
""", base=KERNEL_BASE)
        system.load(program)
        system.manager.register_gate(
            program.symbol("g0"), program.symbol("inside"), domain.domain_id
        )
        tracer = Tracer(system.machine)
        system.run(program.symbol("entry"), max_steps=100)
        assert tracer.domains_visited() == [0, domain.domain_id]
        gates = [r for r in tracer.records if r.is_gate]
        assert len(gates) == 1 and gates[0].domain == domain.domain_id

    def test_watch_callback_can_stop_collection(self):
        hits = []

        def watch(record):
            hits.append(record.index)
            return record.index >= 2

        system, tracer = traced_system("""
entry:
    li a0, 1
    li a1, 2
    li a2, 3
    li a3, 4
    halt
""", watch=watch)
        assert hits == [0, 1, 2]
        assert tracer.total_records == 3  # collection stopped

    def test_detach_restores_machine(self):
        system, tracer = traced_system("entry:\n    halt\n")
        before = tracer.total_records
        tracer.detach()
        system.cpu.pc = KERNEL_BASE
        system.machine.step()
        assert tracer.total_records == before

    def test_render_tail(self):
        system, tracer = traced_system("""
entry:
    li a0, 7
    halt
""")
        text = tracer.render_tail(5)
        assert "pc=0x" in text and "dom=" in text
