"""The block-summary executor: machine-level bit-identity (§3.18).

The block executor must be a pure wall-clock optimization: for every
program, running with block summaries on, off (per-instruction fast
path) and with ``fast_path=False`` (reference slow path) must produce
bit-identical instructions, cycles, traps, architectural registers and
``PcuStats``.  This suite drives small assembled programs and the
gate-stress kernel workload through all three modes on both backends,
exercises the mid-block fault and escaping-exception paths, and pins
the escape hatches (``PcuConfig(block_summaries=False)``, the
``Machine.block_summaries`` flag, step hooks, an attached contract
monitor) that must keep the reference path in charge.
"""

import dataclasses

import pytest

from repro.contracts import ContractMonitor
from repro.core import CONFIG_8E
from repro.kernel import RiscvKernel, X86Kernel
from repro.riscv import (
    KERNEL_BASE as RISCV_BASE,
    assemble as riscv_assemble,
    build_riscv_system,
)
from repro.sim import MemoryAccessError, SimulationLimitExceeded
from repro.workloads import GATE_STRESS
from repro.workloads.generator import riscv_user_program, x86_user_program
from repro.x86 import (
    IDT_BASE,
    KERNEL_BASE as X86_BASE,
    VEC_UD,
    assemble as x86_assemble,
    build_x86_system,
)

BLOCK_OFF = dataclasses.replace(CONFIG_8E, block_summaries=False)
SLOW_PATH = dataclasses.replace(CONFIG_8E, fast_path=False)
ALL_MODES = (CONFIG_8E, BLOCK_OFF, SLOW_PATH)

X86_LOOP = """
entry:
    mov rcx, 40
loop:
    mov rax, 5
    add rax, 7
    sub rax, 2
    and rax, 0xFF
    sub rcx, 1
    cmp rcx, 0
    jne loop
    hlt
"""

RISCV_LOOP = """
entry:
    li t0, 40
loop:
    addi t1, t1, 3
    add t2, t1, t0
    sub t3, t2, t1
    addi t0, t0, -1
    bnez t0, loop
    halt
"""


def run_x86(config, source=X86_LOOP, *, max_steps=100_000):
    system = build_x86_system(config)
    domain = system.manager.create_domain("all")
    system.manager.allow_all_instructions(domain.domain_id)
    program = x86_assemble(source, base=X86_BASE)
    system.load(program)
    system.run(program.symbol("entry"), max_steps=max_steps)
    return system


def run_riscv(config, source=RISCV_LOOP, *, max_steps=100_000):
    system = build_riscv_system(config)
    domain = system.manager.create_domain("all")
    system.manager.allow_all_instructions(domain.domain_id)
    program = riscv_assemble(source, base=RISCV_BASE)
    system.load(program)
    system.run(program.symbol("entry"), max_steps=max_steps)
    return system


def snapshot(system):
    stats = system.machine.stats
    return {
        "instructions": stats.instructions,
        "cycles": stats.cycles,
        "traps": stats.traps,
        "halted": stats.halted,
        "regs": tuple(system.cpu.regs),
        "pcu": system.pcu.stats.as_dict(),
    }


class TestX86Identity:
    def test_three_way_bit_identity(self):
        blocky, off, slow = (run_x86(config) for config in ALL_MODES)
        reference = snapshot(off)
        assert snapshot(blocky) == reference
        assert snapshot(slow) == reference
        # The block run really took the block executor; the others
        # never probed.
        assert blocky.pcu.block_stats.insts > 0
        assert off.pcu.block_stats.probes == 0
        assert slow.pcu.block_stats.probes == 0

    def test_trap_inside_a_block_takes_the_idt_path(self):
        # mov/mov/add/div is one straight-line block; the div faults at
        # member 3, which must vector through the IDT exactly like the
        # per-instruction path — same handler, same counters.
        source = """
        entry:
            mov rsp, 0x6e0000
            mov rax, %d
            mov rbx, handler
            mov [rax+%d], rbx
            mov rbx, %d
            mov rcx, 0x610000
            mov [rcx+0], rbx
            mov rbx, 4095
            mov [rcx+8], rbx
            lidt [rcx+0]
            mov rax, 8
            mov rbx, 0
            add rax, 4
            div rbx
            hlt
        handler:
            mov rdi, 99
            hlt
        """ % (IDT_BASE, 8 * VEC_UD, IDT_BASE)
        blocky = run_x86(CONFIG_8E, source)
        off = run_x86(BLOCK_OFF, source)
        assert blocky.cpu.regs[7] == off.cpu.regs[7] == 99
        assert snapshot(blocky) == snapshot(off)
        assert blocky.machine.stats.traps == 1
        assert blocky.pcu.block_stats.insts > 0

    def test_escaping_exception_inside_a_block(self):
        # An out-of-range load escapes the run on the reference path;
        # mid-block it must escape with identical attribution.
        source = """
        entry:
            mov rbx, 0x40000000
            mov rax, 1
            add rax, 2
            mov rcx, [rbx]
            hlt
        """
        snaps = []
        for config in (CONFIG_8E, BLOCK_OFF):
            system = build_x86_system(config)
            domain = system.manager.create_domain("all")
            system.manager.allow_all_instructions(domain.domain_id)
            program = x86_assemble(source, base=X86_BASE)
            system.load(program)
            with pytest.raises(MemoryAccessError):
                system.run(program.symbol("entry"))
            snaps.append(snapshot(system))
        assert snaps[0] == snaps[1]

    def test_budget_cutoff_is_identical(self):
        # A non-halting program must stop after exactly max_steps in
        # both modes — a block never overshoots the budget.
        source = """
        entry:
            mov rax, 1
        loop:
            add rax, 1
            add rax, 2
            add rax, 3
            and rax, 0xFFFF
            jmp loop
        """
        snaps = []
        for config in (CONFIG_8E, BLOCK_OFF):
            system = build_x86_system(config)
            domain = system.manager.create_domain("all")
            system.manager.allow_all_instructions(domain.domain_id)
            program = x86_assemble(source, base=X86_BASE)
            system.load(program)
            with pytest.raises(SimulationLimitExceeded):
                system.run(program.symbol("entry"), max_steps=1001)
            snaps.append(snapshot(system))
        assert snaps[0] == snaps[1]
        assert snaps[0]["instructions"] == 1001

    def test_machine_flag_escape_hatch(self):
        system = build_x86_system(CONFIG_8E)
        system.machine.block_summaries = False
        domain = system.manager.create_domain("all")
        system.manager.allow_all_instructions(domain.domain_id)
        program = x86_assemble(X86_LOOP, base=X86_BASE)
        system.load(program)
        system.run(program.symbol("entry"))
        assert system.pcu.block_stats.probes == 0
        assert snapshot(system) == snapshot(run_x86(BLOCK_OFF))

    def test_step_hook_keeps_the_reference_path(self):
        system = build_x86_system(CONFIG_8E)
        seen = []
        system.machine.step_hook = lambda info: seen.append(info.pc) or False
        domain = system.manager.create_domain("all")
        system.manager.allow_all_instructions(domain.domain_id)
        program = x86_assemble(X86_LOOP, base=X86_BASE)
        system.load(program)
        system.run(program.symbol("entry"))
        assert system.pcu.block_stats.probes == 0
        # The hook saw every instruction (the halting one returns
        # before the hook call, as the reference loop always did).
        assert len(seen) == system.machine.stats.instructions - 1

    def test_reload_flushes_the_block_cache(self):
        system = run_x86(CONFIG_8E)
        assert system.cpu._block_cache
        invalidations = system.pcu.block_stats.invalidations
        program = x86_assemble(X86_LOOP, base=X86_BASE)
        system.load(program)  # icache coherence: flush_decode_cache
        assert not system.cpu._block_cache
        assert system.pcu.block_stats.invalidations == invalidations + 1


class TestRiscvIdentity:
    def test_three_way_bit_identity(self):
        blocky, off, slow = (run_riscv(config) for config in ALL_MODES)
        reference = snapshot(off)
        assert snapshot(blocky) == reference
        assert snapshot(slow) == reference
        assert blocky.pcu.block_stats.insts > 0
        assert off.pcu.block_stats.probes == 0
        assert slow.pcu.block_stats.probes == 0

    def test_escaping_exception_inside_a_block(self):
        # An out-of-range load is a simulator-level error that escapes
        # the run on the reference path; mid-block it must escape too,
        # with the retired prefix attributed identically.
        source = """
        entry:
            addi t0, x0, 1
            addi t1, x0, 2
            li t2, 0x40000000
            ld t3, 0(t2)
            halt
        """
        snaps = []
        for config in (CONFIG_8E, BLOCK_OFF):
            system = build_riscv_system(config)
            domain = system.manager.create_domain("all")
            system.manager.allow_all_instructions(domain.domain_id)
            program = riscv_assemble(source, base=RISCV_BASE)
            system.load(program)
            with pytest.raises(MemoryAccessError):
                system.run(program.symbol("entry"))
            snaps.append(snapshot(system))
        assert snaps[0] == snaps[1]


class TestKernelWorkloadIdentity:
    """The gate-stress kernel exercises BYPASS-mode blocks: domain
    entries through gates, privilege revocations, ISA-Grid faults and
    syscalls interleave with straight-line user code."""

    ITERATIONS = 8
    MAX_STEPS = 1_000_000

    def run_kernel(self, kernel_class, user_program, config):
        profile = dataclasses.replace(GATE_STRESS,
                                      outer_iterations=self.ITERATIONS)
        kernel = kernel_class("decomposed", config)
        stats = kernel.run(user_program(profile), max_steps=self.MAX_STEPS)
        observed = {
            "instructions": stats.instructions,
            "cycles": stats.cycles,
            "traps": stats.traps,
            "pcu": kernel.system.pcu.stats.as_dict(),
            "syscalls": kernel.syscall_count,
            "faults": kernel.fault_count,
        }
        return observed, kernel

    def test_x86_gate_stress_three_way(self):
        results = {}
        for config in ALL_MODES:
            results[config.fast_path, config.block_summaries] = (
                self.run_kernel(X86Kernel, x86_user_program, config))
        reference = results[True, False][0]
        for key, (observed, _) in results.items():
            assert observed == reference, "mode %r diverged" % (key,)
        blocky = results[True, True][1]
        assert blocky.system.pcu.block_stats.hits > 0
        assert results[True, False][1].system.pcu.block_stats.probes == 0

    def test_riscv_gate_stress_three_way(self):
        results = {}
        for config in ALL_MODES:
            results[config.fast_path, config.block_summaries] = (
                self.run_kernel(RiscvKernel, riscv_user_program, config))
        reference = results[True, False][0]
        for key, (observed, _) in results.items():
            assert observed == reference, "mode %r diverged" % (key,)
        assert results[True, True][1].system.pcu.block_stats.hits > 0

    def test_attached_monitor_forces_per_instruction_cadence(self):
        # An armed contract tap must see every check: probes refuse,
        # and the monitored event stream is identical with blocks
        # configured on or off.
        monitors = []
        for config in (CONFIG_8E, BLOCK_OFF):
            profile = dataclasses.replace(GATE_STRESS,
                                          outer_iterations=self.ITERATIONS)
            kernel = X86Kernel("decomposed", config)
            monitor = ContractMonitor(seed=0)
            monitor.attach(kernel.system.pcu, kernel.system.manager)
            kernel.run(x86_user_program(profile), max_steps=self.MAX_STEPS)
            assert kernel.system.pcu.block_stats.hits == 0
            assert monitor.total_violations == 0
            monitors.append(monitor)
        assert monitors[0].events_seen == monitors[1].events_seen > 0
