"""Cache-hierarchy timing model (Table 3 parameters)."""

import pytest

from repro.sim import CacheLevel, MemoryHierarchy, gem5_o3_hierarchy, rocket_hierarchy


class TestCacheLevel:
    def test_first_access_misses(self):
        level = CacheLevel("L1", size=1024, line=64, ways=2, latency=2)
        assert level.access(0x100) is False
        assert level.access(0x100) is True

    def test_same_line_hits(self):
        level = CacheLevel("L1", size=1024, line=64, ways=2, latency=2)
        level.access(0x100)
        assert level.access(0x13F) is True  # same 64-byte line

    def test_set_conflict_eviction(self):
        # 2-way: three lines mapping to the same set evict the LRU one.
        level = CacheLevel("L1", size=1024, line=64, ways=2, latency=2)
        n_sets = level.n_sets
        a, b, c = (0, n_sets * 64, 2 * n_sets * 64)
        level.access(a)
        level.access(b)
        level.access(c)  # evicts a
        assert level.access(a) is False

    def test_lru_within_set(self):
        level = CacheLevel("L1", size=1024, line=64, ways=2, latency=2)
        n_sets = level.n_sets
        a, b, c = (0, n_sets * 64, 2 * n_sets * 64)
        level.access(a)
        level.access(b)
        level.access(a)  # promote a
        level.access(c)  # evicts b
        assert level.access(a) is True
        assert level.access(b) is False

    def test_stats(self):
        level = CacheLevel("L1", size=1024, line=64, ways=2, latency=2)
        level.access(0)
        level.access(0)
        assert level.stats.hits == 1 and level.stats.misses == 1
        assert level.stats.hit_rate == 0.5

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            CacheLevel("bad", size=1000, line=64, ways=3, latency=1)

    def test_flush(self):
        level = CacheLevel("L1", size=1024, line=64, ways=2, latency=2)
        level.access(0)
        level.flush()
        assert level.access(0) is False


class TestHierarchy:
    def test_l1_hit_latency(self):
        hierarchy = gem5_o3_hierarchy()
        hierarchy.access_data(0x1000)
        assert hierarchy.access_data(0x1000) == 2

    def test_full_miss_latency(self):
        hierarchy = gem5_o3_hierarchy()
        assert hierarchy.access_data(0x1000) == 2 + 20 + 32 + 150

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = gem5_o3_hierarchy()
        hierarchy.access_data(0x0)
        # Evict line 0 from the 4-way L1 by touching 4 conflicting lines.
        n_sets = hierarchy.l1d.n_sets
        for i in range(1, 5):
            hierarchy.access_data(i * n_sets * 64)
        latency = hierarchy.access_data(0x0)
        assert latency == 2 + 20  # L1 miss, L2 hit

    def test_i_and_d_side_separate(self):
        hierarchy = gem5_o3_hierarchy()
        hierarchy.access_instruction(0x1000)
        # same address on the D side still misses L1D (but hits shared L2)
        assert hierarchy.access_data(0x1000) == 2 + 20

    def test_miss_path_latencies_match_table4(self):
        """Rocket load/store miss >120 cycles; Gem5 >200 (Table 4)."""
        assert rocket_hierarchy().miss_path_latency > 120 or \
            rocket_hierarchy().miss_path_latency == 122
        assert rocket_hierarchy().miss_path_latency >= 120
        assert gem5_o3_hierarchy().miss_path_latency > 200

    def test_gem5_parameters_match_table3(self):
        hierarchy = gem5_o3_hierarchy()
        assert hierarchy.l1i.size == 32 * 1024 and hierarchy.l1i.ways == 4
        assert hierarchy.l1d.size == 32 * 1024
        assert hierarchy.shared[0].size == 256 * 1024
        assert hierarchy.shared[0].ways == 16
        assert hierarchy.shared[1].size == 2 * 1024 * 1024
        assert hierarchy.shared[1].latency == 32

    def test_flush_flushes_all_levels(self):
        hierarchy = gem5_o3_hierarchy()
        hierarchy.access_data(0x1000)
        hierarchy.flush()
        assert hierarchy.access_data(0x1000) == hierarchy.miss_path_latency
