"""Tournament branch predictor."""

from repro.sim import TournamentPredictor


class TestPredictor:
    def test_learns_always_taken(self):
        predictor = TournamentPredictor()
        pc = 0x1000
        for _ in range(8):
            predictor.update(pc, taken=True)
        assert predictor.predict(pc) is True

    def test_learns_never_taken(self):
        predictor = TournamentPredictor()
        pc = 0x1000
        for _ in range(8):
            predictor.update(pc, taken=False)
        assert predictor.predict(pc) is False

    def test_update_reports_mispredictions(self):
        predictor = TournamentPredictor()
        pc = 0x1000
        for _ in range(8):
            predictor.update(pc, taken=True)
        assert predictor.update(pc, taken=True) is False  # correct
        assert predictor.update(pc, taken=False) is True  # mispredicted

    def test_loop_branch_accuracy(self):
        """A taken-99-times loop branch should mispredict rarely."""
        predictor = TournamentPredictor()
        pc = 0x2000
        mispredictions = 0
        for _ in range(10):            # 10 runs of a 100-iteration loop
            for i in range(100):
                taken = i != 99
                mispredictions += predictor.update(pc, taken)
        assert mispredictions < 10 * 8  # far better than always-wrong

    def test_alternating_pattern_learned_by_global_history(self):
        predictor = TournamentPredictor()
        pc = 0x3000
        # Warm up on a strict alternation.
        for i in range(200):
            predictor.update(pc, taken=i % 2 == 0)
        late_mispredictions = sum(
            predictor.update(pc, taken=i % 2 == 0) for i in range(200, 260)
        )
        assert late_mispredictions <= 10

    def test_distinct_branches_tracked_separately(self):
        """Two interleaved opposite-biased branches both become
        predictable (via local tables and/or history correlation)."""
        predictor = TournamentPredictor()
        for _ in range(50):
            predictor.update(0x1000, taken=True)
            predictor.update(0x2000, taken=False)
        mispredictions = 0
        for _ in range(50):
            mispredictions += predictor.update(0x1000, taken=True)
            mispredictions += predictor.update(0x2000, taken=False)
        assert mispredictions <= 5
