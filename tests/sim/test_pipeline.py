"""Pipeline timing models — calibrated against the paper's Table 4."""

import pytest

from repro.core.isa_extension import GateKind
from repro.sim import (
    InOrderPipelineModel,
    OutOfOrderPipelineModel,
    StepInfo,
    gem5_o3_hierarchy,
    rocket_hierarchy,
)


def warm(model, pc=0x1000):
    """Warm the I-cache line for ``pc`` so fetch costs nothing extra."""
    model.hierarchy.access_instruction(pc)


@pytest.fixture
def inorder():
    model = InOrderPipelineModel(rocket_hierarchy())
    warm(model)
    return model


@pytest.fixture
def o3():
    model = OutOfOrderPipelineModel(gem5_o3_hierarchy())
    warm(model)
    model.hierarchy.access_instruction(0x1000)  # fully warm
    return model


class TestInOrderModel:
    def test_alu_is_one_cycle(self, inorder):
        assert inorder.instruction_cycles(StepInfo(pc=0x1000)) == 1.0

    def test_hccall_is_five_cycles(self, inorder):
        """Table 4: Rocket hccall = 5 cycles."""
        info = StepInfo(pc=0x1000, is_gate=True, gate_kind=GateKind.HCCALL)
        assert inorder.instruction_cycles(info) == 5.0

    def test_hccalls_is_twelve_cycles(self, inorder):
        """Table 4: Rocket hccalls = 12 cycles."""
        info = StepInfo(pc=0x1000, is_gate=True, gate_kind=GateKind.HCCALLS)
        assert inorder.instruction_cycles(info) == 12.0

    def test_hcrets_is_twelve_cycles(self, inorder):
        """Table 4: Rocket hcrets = 12 cycles."""
        info = StepInfo(pc=0x1000, is_gate=True, gate_kind=GateKind.HCRETS)
        assert inorder.instruction_cycles(info) == 12.0

    def test_load_miss_exceeds_120_cycles(self):
        """Table 4: Rocket load/store miss > 120 cycles."""
        model = InOrderPipelineModel(rocket_hierarchy())
        warm(model)
        info = StepInfo(pc=0x1000, is_load=True, mem_address=0x80000)
        assert model.instruction_cycles(info) > 120

    def test_warm_load_is_cheap(self, inorder):
        inorder.hierarchy.access_data(0x80000)
        info = StepInfo(pc=0x1000, is_load=True, mem_address=0x80000)
        assert inorder.instruction_cycles(info) <= 2.0

    def test_pcu_stall_added(self, inorder):
        info = StepInfo(pc=0x1000, pcu_stall=30)
        assert inorder.instruction_cycles(info) == 31.0

    def test_mispredict_penalty(self, inorder):
        # Train not-taken, then take the branch.
        for _ in range(8):
            inorder.instruction_cycles(
                StepInfo(pc=0x1000, is_branch=True, branch_taken=False)
            )
        cycles = inorder.instruction_cycles(
            StepInfo(pc=0x1000, is_branch=True, branch_taken=True)
        )
        assert cycles == 1.0 + inorder.MISPREDICT_PENALTY

    def test_trap_costs(self, inorder):
        assert inorder.instruction_cycles(StepInfo(pc=0x1000, trapped=True)) > 30


class TestOutOfOrderModel:
    def test_base_cost_is_fractional(self, o3):
        assert o3.instruction_cycles(StepInfo(pc=0x1000)) == pytest.approx(1 / 8)

    def test_hccall_is_34_cycles(self, o3):
        """Table 4: Gem5 hccall = 34 cycles."""
        info = StepInfo(pc=0x1000, is_gate=True, gate_kind=GateKind.HCCALL)
        assert o3.instruction_cycles(info) == pytest.approx(34, abs=1)

    def test_hccalls_is_52_cycles(self, o3):
        info = StepInfo(pc=0x1000, is_gate=True, gate_kind=GateKind.HCCALLS)
        assert o3.instruction_cycles(info) == pytest.approx(52, abs=1)

    def test_hcrets_alone_is_44_cycles(self, o3):
        info = StepInfo(pc=0x1000, is_gate=True, gate_kind=GateKind.HCRETS)
        assert o3.instruction_cycles(info) == pytest.approx(44, abs=1)

    def test_forwarded_pair_is_74_cycles(self, o3):
        """Table 4: x86 X-domain call (74) < hccalls + hcrets (96)
        because the pops forward from the store queue."""
        call = o3.instruction_cycles(
            StepInfo(pc=0x1000, is_gate=True, gate_kind=GateKind.HCCALLS)
        )
        ret = o3.instruction_cycles(
            StepInfo(pc=0x1000, is_gate=True, gate_kind=GateKind.HCRETS)
        )
        assert call + ret == pytest.approx(74, abs=2)

    def test_forwarding_expires_outside_store_queue_window(self, o3):
        o3.instruction_cycles(
            StepInfo(pc=0x1000, is_gate=True, gate_kind=GateKind.HCCALLS)
        )
        for _ in range(o3.STORE_QUEUE_WINDOW + 1):
            o3.instruction_cycles(StepInfo(pc=0x1000))
        ret = o3.instruction_cycles(
            StepInfo(pc=0x1000, is_gate=True, gate_kind=GateKind.HCRETS)
        )
        assert ret == pytest.approx(44, abs=1)

    def test_store_misses_mostly_hidden(self):
        model = OutOfOrderPipelineModel(gem5_o3_hierarchy())
        warm(model)
        model.hierarchy.access_instruction(0x1000)
        load = model.instruction_cycles(
            StepInfo(pc=0x1000, is_load=True, mem_address=0x90000)
        )
        model.hierarchy.flush()
        model.hierarchy.access_instruction(0x1000)
        store = model.instruction_cycles(
            StepInfo(pc=0x1000, is_store=True, mem_address=0xA0000)
        )
        assert store < load  # stores retire from the store queue

    def test_serializing_csr_drain(self, o3):
        cycles = o3.instruction_cycles(StepInfo(pc=0x1000, is_csr=True))
        assert cycles >= o3.SERIALIZE


class TestCrossModelShape:
    def test_gate_much_cheaper_than_vm_exit(self, inorder, o3):
        """Section 2.3 shape: hardware gates beat the ~1700-cycle trap."""
        from repro.baselines import VM_EXIT_CYCLES

        for model in (inorder, o3):
            gate = model.instruction_cycles(
                StepInfo(pc=0x1000, is_gate=True, gate_kind=GateKind.HCCALL)
            )
            assert gate * 10 < VM_EXIT_CYCLES
