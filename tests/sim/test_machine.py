"""The Machine run loop."""

import pytest

from repro.sim import (
    InOrderPipelineModel,
    Machine,
    PhysicalMemory,
    SimulationLimitExceeded,
    StepInfo,
    rocket_hierarchy,
)


class ScriptedCore:
    """A fake CPU that replays a fixed list of StepInfo records."""

    def __init__(self, steps):
        self.steps = list(steps)
        self.pc = 0

    def step(self):
        self.pc += 4
        if self.steps:
            return self.steps.pop(0)
        return StepInfo(pc=self.pc, halted=True)


def make_machine():
    return Machine(PhysicalMemory(size=1 << 20), rocket_hierarchy(),
                   InOrderPipelineModel(rocket_hierarchy()))


class TestRunLoop:
    def test_counts_instructions_and_cycles(self):
        machine = make_machine()
        machine.attach_cpu(ScriptedCore([StepInfo(pc=0), StepInfo(pc=4)]))
        stats = machine.run()
        assert stats.instructions == 3  # two scripted + halt
        assert stats.cycles > 0
        assert stats.halted

    def test_traps_counted(self):
        machine = make_machine()
        machine.attach_cpu(ScriptedCore([StepInfo(pc=0, trapped=True)]))
        stats = machine.run()
        assert stats.traps == 1

    def test_limit_raises_by_default(self):
        machine = make_machine()

        class Runaway:
            pc = 0

            def step(self):
                return StepInfo(pc=0)

        machine.attach_cpu(Runaway())
        with pytest.raises(SimulationLimitExceeded):
            machine.run(max_steps=100)

    def test_limit_tolerated_when_requested(self):
        machine = make_machine()

        class Runaway:
            pc = 0

            def step(self):
                return StepInfo(pc=0)

        machine.attach_cpu(Runaway())
        stats = machine.run(max_steps=100, require_halt=False)
        assert stats.instructions == 100

    def test_no_cpu_is_an_error(self):
        with pytest.raises(RuntimeError):
            make_machine().step()

    def test_cpi_property(self):
        machine = make_machine()
        machine.attach_cpu(ScriptedCore([StepInfo(pc=0)]))
        stats = machine.run()
        assert stats.cpi == pytest.approx(stats.cycles / stats.instructions)

    def test_reset_stats(self):
        machine = make_machine()
        machine.attach_cpu(ScriptedCore([StepInfo(pc=0)]))
        machine.run()
        machine.reset_stats()
        assert machine.stats.instructions == 0
        assert machine.stats.cycles == 0.0

    def test_check_data_access_without_pcu_is_noop(self):
        machine = make_machine()
        machine.check_data_access(0x1234)  # must not raise


class TestStepHook:
    def test_hook_sees_every_step_and_stats_match_hookless(self):
        seen = []
        hooked = make_machine()
        hooked.attach_cpu(ScriptedCore([StepInfo(pc=0), StepInfo(pc=4)]))
        hooked.step_hook = lambda info: seen.append(info.pc) or False
        plain = make_machine()
        plain.attach_cpu(ScriptedCore([StepInfo(pc=0), StepInfo(pc=4)]))
        a, b = hooked.run(), plain.run()
        assert (a.instructions, a.cycles, a.traps) == \
            (b.instructions, b.cycles, b.traps)
        # the halting step is not offered to the hook (run returns first)
        assert len(seen) == a.instructions - 1

    def test_truthy_hook_stops_the_run_with_stats_flushed(self):
        machine = make_machine()
        machine.attach_cpu(ScriptedCore(
            [StepInfo(pc=0, trapped=True)] * 10))
        machine.step_hook = lambda info: machine.stats.instructions >= 3
        stats = machine.run(max_steps=100, require_halt=False)
        assert stats.instructions == 3
        assert stats.traps == 3  # flushed despite the early return
        assert not stats.halted

    def test_hook_runs_under_a_wrapped_step(self):
        # The Tracer wraps ``step`` on the instance; the hook must be
        # honoured on that fallback path too.
        machine = make_machine()
        machine.attach_cpu(ScriptedCore([StepInfo(pc=0)] * 10))
        inner = machine.step
        machine.step = lambda: inner()
        machine.step_hook = lambda info: machine.stats.instructions >= 2
        stats = machine.run(max_steps=100, require_halt=False)
        assert stats.instructions == 2
