"""Sparse physical memory."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import MemoryAccessError, PhysicalMemory


class TestScalarAccess:
    def test_default_zero(self):
        memory = PhysicalMemory(size=1 << 20)
        assert memory.load(0x1000, 8) == 0

    @pytest.mark.parametrize("width", [1, 2, 4, 8])
    def test_roundtrip_widths(self, width):
        memory = PhysicalMemory(size=1 << 20)
        value = (1 << 8 * width) - 3
        memory.store(0x100, value, width)
        assert memory.load(0x100, width) == value

    def test_little_endian(self):
        memory = PhysicalMemory(size=1 << 20)
        memory.store(0x100, 0x0102030405060708, 8)
        assert memory.load(0x100, 1) == 0x08
        assert memory.load(0x107, 1) == 0x01

    def test_store_truncates(self):
        memory = PhysicalMemory(size=1 << 20)
        memory.store(0x100, 0x1FF, 1)
        assert memory.load(0x100, 1) == 0xFF

    def test_out_of_range(self):
        memory = PhysicalMemory(size=1 << 12)
        with pytest.raises(MemoryAccessError):
            memory.load(1 << 12, 1)
        with pytest.raises(MemoryAccessError):
            memory.store((1 << 12) - 4, 0, 8)

    def test_cross_page_access(self):
        memory = PhysicalMemory(size=1 << 20)
        memory.store(0xFFC, 0x1122334455667788, 8)  # spans pages 0 and 1
        assert memory.load(0xFFC, 8) == 0x1122334455667788

    def test_base_offset(self):
        memory = PhysicalMemory(size=1 << 12, base=0x8000)
        memory.store(0x8000, 7, 8)
        with pytest.raises(MemoryAccessError):
            memory.load(0x0, 8)


class TestBulkAccess:
    def test_bytes_roundtrip(self):
        memory = PhysicalMemory(size=1 << 20)
        memory.store_bytes(0x200, b"hello world")
        assert memory.load_bytes(0x200, 11) == b"hello world"

    def test_bytes_cross_page(self):
        memory = PhysicalMemory(size=1 << 20)
        data = bytes(range(200)) * 30  # 6000 bytes, > one page
        memory.store_bytes(0xF00, data)
        assert memory.load_bytes(0xF00, len(data)) == data

    def test_pages_allocated_lazily(self):
        memory = PhysicalMemory(size=1 << 30)
        assert memory.pages_allocated == 0
        memory.store(0x10_0000, 1, 8)
        assert memory.pages_allocated == 1


class TestWordBacking:
    def test_word_roundtrip(self):
        memory = PhysicalMemory(size=1 << 20)
        memory.store_word(0x100, 0xDEAD)
        assert memory.load_word(0x100) == 0xDEAD

    def test_word_alignment_enforced(self):
        memory = PhysicalMemory(size=1 << 20)
        with pytest.raises(MemoryAccessError):
            memory.load_word(0x101)
        with pytest.raises(MemoryAccessError):
            memory.store_word(0x104 + 1, 0)


@given(st.lists(st.tuples(
    st.integers(min_value=0, max_value=(1 << 16) - 8),
    st.integers(min_value=0, max_value=(1 << 64) - 1),
), max_size=50))
def test_last_write_wins(writes):
    memory = PhysicalMemory(size=1 << 16)
    reference = {}
    for address, value in writes:
        address &= ~7
        memory.store(address, value, 8)
        reference[address] = value
    for address, value in reference.items():
        assert memory.load(address, 8) == value
