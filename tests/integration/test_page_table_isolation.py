"""The §2.2 page-table-isolation attack with real Sv39 translation."""

import importlib.util
import os

import pytest


@pytest.fixture(scope="module")
def demo():
    path = os.path.join(
        os.path.dirname(__file__), "..", "..", "examples",
        "page_table_isolation.py",
    )
    spec = importlib.util.spec_from_file_location("pti_demo", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestPageTableIsolation:
    def test_native_attack_leaks_the_secret(self, demo):
        result = demo.run(protected=False)
        assert result["legit_read"] == demo.PUBLIC_VALUE
        assert result["attack_read"] == demo.SECRET_VALUE
        assert result["faults"] == 0

    def test_isagrid_preserves_isolation(self, demo):
        result = demo.run(protected=True)
        assert result["legit_read"] == demo.PUBLIC_VALUE
        assert result["attack_read"] == demo.PUBLIC_VALUE  # no leak
        assert result["faults"] == 2  # satp write + sfence both blocked

    def test_legitimate_mapping_identical_in_both(self, demo):
        assert demo.run(protected=True)["legit_read"] == \
            demo.run(protected=False)["legit_read"]
