"""Per-thread trusted stacks and domain-0 context switching (§5.2/§8)."""

import pytest

from repro.core import ConfigurationError, DomainManager, GateKind


class TestThreadStackAllocation:
    def test_seeded_stack_has_one_frame(self, pcu, manager):
        kernel = manager.create_domain("kernel")
        sp, base, limit = manager.create_thread_stack(
            frames=8, entry_address=0x4000, entry_domain=kernel.domain_id
        )
        assert sp == base + 16
        assert pcu.trusted_memory.load_word(base) == 0x4000
        assert pcu.trusted_memory.load_word(base + 8) == kernel.domain_id

    def test_unseeded_stack_is_empty(self, manager):
        sp, base, limit = manager.create_thread_stack(frames=8)
        assert sp == base
        assert limit == base + 8 * 2 * 8

    def test_seeding_into_domain0_rejected(self, manager):
        """hcrets can never enter domain-0, so such a seed is a bug."""
        with pytest.raises(ConfigurationError):
            manager.create_thread_stack(frames=8, entry_address=0x4000, entry_domain=0)

    def test_contexts_do_not_alias(self, manager):
        a = manager.create_thread_stack(frames=8)
        b = manager.create_thread_stack(frames=8)
        assert a[2] <= b[1]  # a's limit at or below b's base

    def test_switching_contexts_switches_pop_source(self, pcu, manager):
        """Installing another thread's context redirects hcrets."""
        kernel = manager.create_domain("kernel")
        other = manager.create_domain("other")
        manager.allocate_trusted_stack(frames=8)
        gate = manager.register_gate(0x1000, 0x2000, other.domain_id)
        pcu.execute_gate(GateKind.HCCALL, gate, 0x1000)  # leave domain-0
        gate2 = manager.register_gate(0x2100, 0x2200, kernel.domain_id)
        pcu.execute_gate(GateKind.HCCALLS, gate2, 0x2100, return_address=0x2104)

        seeded = manager.create_thread_stack(
            frames=8, entry_address=0x9000, entry_domain=other.domain_id
        )
        saved = pcu.trusted_stack.save_context()
        pcu.trusted_stack.restore_context(seeded)
        target, _ = pcu.execute_gate(GateKind.HCRETS, 0, 0x2200)
        assert target == 0x9000                     # the seeded entry
        assert pcu.current_domain == other.domain_id

        pcu.trusted_stack.restore_context(saved)
        target, _ = pcu.execute_gate(GateKind.HCRETS, 0, 0x9000)
        assert target == 0x2104                     # the original frame
        assert pcu.current_domain == other.domain_id


class TestCooperativeThreadsDemo:
    def test_example_interleaves_two_threads(self):
        import importlib.util
        import os

        path = os.path.join(
            os.path.dirname(__file__), "..", "..", "examples",
            "cooperative_threads.py",
        )
        spec = importlib.util.spec_from_file_location("coop_demo", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        system, stats = module.run_demo()
        regs = system.cpu.regs
        assert regs[21] == 0xA    # thread A ran
        assert regs[22] == 0xB    # thread B ran
        assert regs[23] == 0xAB   # thread A resumed after the yield
        assert stats.halted

    def test_hcs_registers_writable_only_in_domain0(self):
        """The Table-2 stack registers are domain-0-only by default."""
        from repro.riscv import (
            CAUSE_ISA_GRID_FAULT, KERNEL_BASE, assemble, build_riscv_system,
        )

        system = build_riscv_system()
        manager = system.manager
        kernel = manager.create_domain("kernel")
        manager.allow_instructions(
            kernel.domain_id, ["alu", "csr", "jump", "halt"]
        )
        manager.grant_register(kernel.domain_id, "stvec", read=True, write=True)
        manager.grant_register(kernel.domain_id, "scause", read=True)
        program = assemble("""
entry:
    csrw hcsp, t0            # fine: still domain-0
    la t0, handler
    csrw stvec, t0
    li t0, 0
g0:
    hccall t0
in_kernel:
    csrw hcsp, t0            # ILLEGAL outside domain-0
    halt
handler:
    csrr a0, scause
    halt
""", base=KERNEL_BASE)
        system.load(program)
        manager.register_gate(
            program.symbol("g0"), program.symbol("in_kernel"), kernel.domain_id
        )
        system.run(program.symbol("entry"), max_steps=1_000)
        assert system.cpu.regs[10] == CAUSE_ISA_GRID_FAULT
