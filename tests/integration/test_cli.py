"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "Rocket Core" in out and "8E.N" in out
        assert "2.21" in out

    def test_scan(self, capsys):
        assert main(["scan"]) == 0
        out = capsys.readouterr().out
        assert "wrmsr" in out and "hidden" in out

    def test_case3(self, capsys):
        assert main(["case3"]) == 0
        out = capsys.readouterr().out
        assert "executes" in out and "faults" in out
        assert "175" in out

    def test_hitrate(self, capsys):
        assert main(["hitrate"]) == 0
        out = capsys.readouterr().out
        assert "sgt" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestBenchCompareGate:
    """`bench --compare` is the CI perf gate; pin its exit contract."""

    @staticmethod
    def _write(tmp_path, name, ips_by_rig):
        from repro.bench import build_trajectory, write_trajectory

        payloads = [{"rig": rig, "instructions": 1000, "cycles": 2000.0,
                     "wall_s": 1000.0 / ips, "ips": float(ips)}
                    for rig, ips in ips_by_rig.items()]
        path = str(tmp_path / name)
        write_trajectory(build_trajectory(payloads, label=name), path)
        return path

    def test_regression_fails(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "base.json",
                               {"rocket": 10000, "kernel": 8000})
        current = self._write(tmp_path, "cur.json",
                              {"rocket": 10000, "kernel": 4000})
        assert main(["bench", "--compare", current, baseline]) == 1
        captured = capsys.readouterr()
        assert "FAIL: 1 rig(s) regressed" in captured.err
        assert "kernel" in captured.out

    def test_within_threshold_passes(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "base.json", {"rocket": 10000})
        current = self._write(tmp_path, "cur.json", {"rocket": 9000})
        assert main(["bench", "--compare", current, baseline]) == 0
        assert "0.90x" in capsys.readouterr().out

    def test_new_rig_is_not_a_regression(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "base.json", {"rocket": 10000})
        current = self._write(tmp_path, "cur.json",
                              {"rocket": 10000, "fresh": 1})
        assert main(["bench", "--compare", current, baseline]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_unreadable_trajectory_is_usage_error(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["bench", "--compare", missing, missing]) == 2
        assert "cannot read trajectory" in capsys.readouterr().err


class TestAttackCampaignCli:
    def test_mini_campaign_passes_and_writes_report(self, tmp_path, capsys):
        import json

        report = str(tmp_path / "attack.json")
        assert main(["attacks", "--campaign", "--seeds", "0",
                     "--streams", "4", "--stream-len", "24",
                     "--report", report]) == 0
        out = capsys.readouterr().out
        assert "missed-but-blocked" in out
        with open(report) as handle:
            payload = json.load(handle)
        assert payload["format"] == "isagrid-attack-campaign-v1"
        assert payload["baseline_missed_pcu_blocked"] > 0
        assert payload["totals"]["pcu_blocked"] == payload["totals"]["generated"]
        assert payload["unwaived_contract_violations"] == 0

    def test_bad_seeds_is_usage_error(self, capsys):
        assert main(["attacks", "--campaign", "--seeds", "zero"]) == 2
        assert "seeds" in capsys.readouterr().err
