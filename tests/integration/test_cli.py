"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "Rocket Core" in out and "8E.N" in out
        assert "2.21" in out

    def test_scan(self, capsys):
        assert main(["scan"]) == 0
        out = capsys.readouterr().out
        assert "wrmsr" in out and "hidden" in out

    def test_case3(self, capsys):
        assert main(["case3"]) == 0
        out = capsys.readouterr().out
        assert "executes" in out and "faults" in out
        assert "175" in out

    def test_hitrate(self, capsys):
        assert main(["hitrate"]) == 0
        out = capsys.readouterr().out
        assert "sgt" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
