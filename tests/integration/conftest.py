"""Integration tests reuse the core suite's synthetic-ISA fixtures."""

from tests.core.conftest import isa_map, manager, pcu, trusted_memory  # noqa: F401
