"""Cross-package integration tests."""

import pytest

from repro.core import CONFIG_16E, CONFIG_8E, CONFIG_8EN, PcuStats
from repro.kernel import RiscvKernel, X86Kernel
from repro.workloads import GATE_STRESS, MBEDTLS, SQLITE
from repro.workloads.generator import riscv_user_program, x86_user_program
from repro.workloads.micro import (
    instruction_latencies,
    measure_riscv_gates,
    measure_x86_gates,
)


class TestDeterminism:
    """The whole stack must be bit-for-bit reproducible."""

    def test_riscv_kernel_run_deterministic(self):
        def run():
            kernel = RiscvKernel("decomposed")
            stats = kernel.run(riscv_user_program(MBEDTLS), max_steps=8_000_000)
            return stats.cycles, stats.instructions, kernel.syscall_count

        assert run() == run()

    def test_x86_kernel_run_deterministic(self):
        def run():
            kernel = X86Kernel("decomposed")
            stats = kernel.run(x86_user_program(MBEDTLS), max_steps=8_000_000)
            return stats.cycles, stats.instructions

        assert run() == run()


class TestConfigSweep:
    @pytest.mark.parametrize("config", [CONFIG_16E, CONFIG_8E, CONFIG_8EN],
                             ids=lambda c: c.name)
    def test_all_configs_run_clean(self, config):
        kernel = RiscvKernel("decomposed", config)
        stats = kernel.run(riscv_user_program(GATE_STRESS), max_steps=8_000_000)
        assert kernel.fault_count == 0
        assert stats.halted

    def test_bigger_caches_never_slower(self):
        program = riscv_user_program(GATE_STRESS)
        cycles = {}
        for config in (CONFIG_16E, CONFIG_8E, CONFIG_8EN):
            kernel = RiscvKernel("decomposed", config)
            cycles[config.name] = kernel.run(program, max_steps=8_000_000).cycles
        assert cycles["16E."] <= cycles["8E."] + 1
        assert cycles["8E."] <= cycles["8E.N"] + 1


class TestRebootSemantics:
    def test_pcu_reset_reenters_domain0(self):
        kernel = RiscvKernel("decomposed")
        kernel.run(riscv_user_program(MBEDTLS), max_steps=8_000_000)
        assert kernel.system.pcu.current_domain != 0
        kernel.system.pcu.reset()
        assert kernel.system.pcu.current_domain == 0

    def test_sequential_workloads_on_fresh_kernels(self):
        """Aggregating stats across per-app kernels (the §7.1 method)."""
        total = PcuStats()
        for profile in (SQLITE, GATE_STRESS):
            kernel = RiscvKernel("decomposed")
            kernel.run(riscv_user_program(profile), max_steps=8_000_000)
            assert kernel.fault_count == 0
            total.merge(kernel.system.pcu.stats)
        assert total.domain_switches > 0
        assert total.total_checks > 100_000


class TestTable4Shape:
    """The microbenchmark orderings the paper's Table 4 establishes."""

    def test_gate_hierarchy_riscv(self):
        gates = measure_riscv_gates(iterations=500)
        latencies = instruction_latencies()["riscv"]
        assert latencies["hccall"] < latencies["hccalls"]
        assert gates["hccall"] < gates["hccalls+hcrets"]

    def test_forwarding_effect_x86(self):
        gates = measure_x86_gates(iterations=500)
        latencies = instruction_latencies()["x86"]
        assert gates["xdomain_hccalls_hcrets"] < (
            latencies["hccalls"] + latencies["hcrets"]
        )

    def test_gates_beat_trap_and_emulate_everywhere(self):
        from repro.baselines import VM_EXIT_CYCLES

        riscv = measure_riscv_gates(iterations=500)
        x86 = measure_x86_gates(iterations=500)
        assert riscv["hccalls+hcrets"] * 20 < VM_EXIT_CYCLES
        assert x86["xdomain_hccalls_hcrets"] * 10 < VM_EXIT_CYCLES


class TestFaultIsolationUnderLoad:
    def test_attack_mid_workload_does_not_corrupt_results(self):
        """An attack blocked mid-run leaves the workload's own state
        intact — the 'system keeps running' half of mitigation."""
        from repro.riscv import USER_BASE, assemble

        source = """
        user_entry:
            li s2, 30
        outer:
            li a7, 16          # hijack the misc module...
            la a0, attack
            li a1, 0
            ecall
            li a7, 1           # ...then business as usual
            ecall
            mv s3, a0
            addi s2, s2, -1
            bnez s2, outer
            li a7, 0
            mv a0, s3
            ecall
        attack:
            li t5, 0xbad
            csrw satp, t5
            ret
        """
        kernel = RiscvKernel("decomposed")
        stats = kernel.run(assemble(source, base=USER_BASE), max_steps=500_000)
        assert kernel.fault_count == 30          # every attempt blocked
        assert kernel.cpu.exit_code == 42        # getpid still correct
        from repro.riscv import CSR_ADDRESS

        assert kernel.cpu.csrs[CSR_ADDRESS["satp"]] == 0
        assert stats.halted
