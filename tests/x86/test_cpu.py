"""The x86 functional CPU: semantics, rings, IDT, ISA-Grid."""

import pytest

from repro.x86 import (
    CR4_TSD,
    CpuPanic,
    IDT_BASE,
    KERNEL_BASE,
    RING0,
    RING3,
    VEC_GP,
    VEC_UD,
    assemble,
    build_x86_system,
)
from repro.x86.registers import MSR_LSTAR


def run_program(source, *, with_isagrid=False, max_steps=100_000):
    system = build_x86_system(with_isagrid=with_isagrid)
    if with_isagrid:
        domain = system.manager.create_domain("all")
        system.manager.allow_all_instructions(domain.domain_id)
    program = assemble(source, base=KERNEL_BASE)
    system.load(program)
    entry = program.symbol("entry") if "entry" in program.symbols else KERNEL_BASE
    system.run(entry, max_steps=max_steps)
    return system, program


class TestAluAndFlow:
    def test_arithmetic(self):
        system, _ = run_program("""
        entry:
            mov rax, 100
            mov rbx, 7
            add rax, rbx
            sub rax, 3
            mov rcx, rax
            and rcx, 0xF
            or rcx, 0x100
            xor rcx, 0x1
            hlt
        """)
        assert system.cpu.regs[0] == 104
        assert system.cpu.regs[1] == (104 & 0xF | 0x100) ^ 1

    def test_mul_div(self):
        system, _ = run_program("""
        entry:
            mov rax, 100
            mov rbx, 7
            mul rbx
            mov rbx, 6
            mov rdx, 0
            div rbx
            hlt
        """)
        assert system.cpu.regs[0] == 700 // 6
        assert system.cpu.regs[2] == 700 % 6

    def test_shifts(self):
        system, _ = run_program("""
        entry:
            mov rbx, 3
            shl rbx, 4
            mov rcx, 0x100
            shr rcx, 4
            hlt
        """)
        assert system.cpu.regs[3] == 48
        assert system.cpu.regs[1] == 0x10

    def test_conditional_branches(self):
        system, _ = run_program("""
        entry:
            mov rax, 5
            mov rbx, 9
            cmp rax, rbx
            jl less
            mov rdi, 1
            jmp done
        less:
            mov rdi, 2
        done:
            cmp rbx, rax
            jb wrong
            mov rsi, 3
            jmp out
        wrong:
            mov rsi, 4
        out:
            hlt
        """)
        assert system.cpu.regs[7] == 2
        assert system.cpu.regs[6] == 3

    def test_signed_vs_unsigned_compare(self):
        system, _ = run_program("""
        entry:
            mov rax, -1
            mov rbx, 1
            cmp rax, rbx
            jl signed_less
            mov rdi, 0
            jmp next
        signed_less:
            mov rdi, 1
        next:
            cmp rax, rbx
            jb unsigned_less
            mov rsi, 0
            jmp out
        unsigned_less:
            mov rsi, 1
        out:
            hlt
        """)
        assert system.cpu.regs[7] == 1  # -1 < 1 signed
        assert system.cpu.regs[6] == 0  # 2^64-1 > 1 unsigned

    def test_stack_and_call(self):
        system, _ = run_program("""
        entry:
            mov rsp, 0x6e0000
            mov rax, 9
            push rax
            call triple
            pop rbx
            hlt
        triple:
            mov rcx, 31
            ret
        """)
        assert system.cpu.regs[1] == 31
        assert system.cpu.regs[3] == 9
        assert system.cpu.regs[4] == 0x6E0000

    def test_lea(self):
        system, _ = run_program("""
        entry:
            mov rbx, 0x1000
            lea rax, [rbx+0x234]
            hlt
        """)
        assert system.cpu.regs[0] == 0x1234


class TestInterrupts:
    IDT_SETUP = """
    entry:
        mov rsp, 0x6e0000
        mov rax, %d
        mov rbx, handler
        mov [rax+%d], rbx
        mov rbx, %d
        mov rcx, 0x610000
        mov [rcx+0], rbx
        mov rbx, 4095
        mov [rcx+8], rbx
        lidt [rcx+0]
    """ % (IDT_BASE, 8 * 0x21, IDT_BASE)

    def test_int_vectors_and_iret(self):
        system, _ = run_program(self.IDT_SETUP + """
            int 0x21
        after:
            mov rbx, 7
            hlt
        handler:
            mov rdi, 42
            iret
        """)
        assert system.cpu.regs[7] == 42
        assert system.cpu.regs[3] == 7  # execution resumed after int

    def test_trap_without_idt_panics(self):
        with pytest.raises(CpuPanic):
            run_program("entry:\n    int 0x21\n    hlt\n")

    def test_ud_vector_on_bad_opcode(self):
        source = self.IDT_SETUP.replace(str(8 * 0x21), str(8 * VEC_UD)) + """
            .byte 0xD6
            hlt
        handler:
            mov rdi, 99
            hlt
        """
        system, _ = run_program(source)
        assert system.cpu.regs[7] == 99


class TestSyscall:
    def test_syscall_sysret_roundtrip(self):
        system, _ = run_program("""
        entry:
            mov rsp, 0x6e0000
            mov rcx, %d
            mov rax, kernel_entry
            mov rdx, 0
            wrmsr
            mov rcx, user_code
            sysret
        user_code:
            mov rdi, 5
            syscall
        back:
            syscall
        kernel_entry:
            add r15, 1
            cmp r15, 2
            je stop
            add rdi, 100
            sysret
        stop:
            hlt
        """ % MSR_LSTAR)
        assert system.cpu.regs[7] == 105  # first round trip ran
        assert system.cpu.ring == RING0   # halted inside the kernel

    def test_syscall_without_lstar_is_gp(self):
        with pytest.raises(CpuPanic):
            run_program("entry:\n    syscall\n    hlt\n")

    def test_ring3_cannot_hlt(self):
        with pytest.raises(CpuPanic) as excinfo:
            run_program("""
            entry:
                mov rcx, %d
                mov rax, kernel_entry
                mov rdx, 0
                wrmsr
                mov rcx, user
                sysret
            user:
                hlt
            kernel_entry:
                hlt
            """ % MSR_LSTAR)
        assert "13" in str(excinfo.value)  # #GP with no IDT


class TestSystemRegisters:
    def test_cr_read_write(self):
        system, _ = run_program("""
        entry:
            mov rax, 0x5000
            mov cr3, rax
            mov rbx, cr3
            hlt
        """)
        assert system.cpu.sys.cr3 == 0x5000
        assert system.cpu.regs[3] == 0x5000

    def test_msr_read_write(self):
        system, _ = run_program("""
        entry:
            mov rcx, 0x150
            mov rax, 0x1234
            mov rdx, 0x1
            wrmsr
            mov rax, 0
            mov rdx, 0
            rdmsr
            hlt
        """)
        assert system.cpu.sys.msrs[0x150] == 0x1 << 32 | 0x1234
        assert system.cpu.regs[0] == 0x1234
        assert system.cpu.regs[2] == 0x1

    def test_unknown_msr_is_gp(self):
        with pytest.raises(CpuPanic):
            run_program("""
            entry:
                mov rcx, 0x9999
                rdmsr
                hlt
            """)

    def test_cpuid_vendor_string(self):
        system, _ = run_program("""
        entry:
            mov rax, 0
            cpuid
            hlt
        """)
        assert system.cpu.regs[3] == 0x756E6547  # "Genu"

    def test_rdtsc_returns_cycles(self):
        system, _ = run_program("""
        entry:
            nop
            nop
            rdtsc
            hlt
        """)
        assert system.cpu.regs[0] > 0

    def test_rdtsc_blocked_by_cr4_tsd_in_ring3(self):
        with pytest.raises(CpuPanic):
            run_program("""
            entry:
                mov rax, cr4
                or rax, %d
                mov cr4, rax
                mov rcx, %d
                mov rax, kernel_entry
                mov rdx, 0
                wrmsr
                mov rcx, user
                sysret
            user:
                rdtsc
                syscall
            kernel_entry:
                hlt
            """ % (CR4_TSD, MSR_LSTAR))

    def test_lidt_updates_idtr(self):
        system, _ = run_program("""
        entry:
            mov rcx, 0x610000
            mov rbx, 0x123000
            mov [rcx+0], rbx
            mov rbx, 255
            mov [rcx+8], rbx
            lidt [rcx+0]
            hlt
        """)
        assert system.cpu.sys.idtr.base == 0x123000
        assert system.cpu.sys.idtr.limit == 255

    def test_sidt_reads_back(self):
        system, _ = run_program("""
        entry:
            mov rcx, 0x610000
            mov rbx, 0x123000
            mov [rcx+0], rbx
            mov rbx, 255
            mov [rcx+8], rbx
            lidt [rcx+0]
            mov rdx, 0x611000
            sidt [rdx+0]
            mov rsi, [rdx+0]
            hlt
        """)
        assert system.cpu.regs[6] == 0x123000

    def test_dr4_dr5_reserved(self):
        with pytest.raises(CpuPanic):
            run_program("""
            entry:
                mov dr4, rax
                hlt
            """)

    def test_wrpkru_allowed_in_ring3(self):
        """The MPK hole: wrpkru is NOT ring-gated (Section 2.2)."""
        system, _ = run_program("""
        entry:
            mov rcx, %d
            mov rax, kernel_entry
            mov rdx, 0
            wrmsr
            mov rcx, user
            sysret
        user:
            mov rax, 0xFF
            wrpkru
            syscall
        kernel_entry:
            hlt
        """ % MSR_LSTAR)
        assert system.cpu.sys.pkru == 0xFF

    def test_wbinvd_flushes_hierarchy(self):
        system, _ = run_program("""
        entry:
            mov rbx, 0x620000
            mov rax, [rbx+0]
            wbinvd
            hlt
        """)
        # After wbinvd the same line misses again.
        hierarchy = system.machine.hierarchy
        assert hierarchy.access_data(0x620000) == hierarchy.miss_path_latency

    def test_clts_clears_ts(self):
        system, _ = run_program("""
        entry:
            mov rax, cr0
            or rax, 8
            mov cr0, rax
            clts
            hlt
        """)
        assert not system.cpu.sys.cr0 & 8
