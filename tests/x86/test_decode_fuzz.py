"""Decoder robustness: arbitrary bytes never crash, only raise
EncodingError — the property the #UD path depends on."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import linear_disassemble
from repro.x86.encoding import EncodingError, decode


@settings(max_examples=300, deadline=None)
@given(st.binary(min_size=1, max_size=16))
def test_decode_total_over_arbitrary_bytes(data):
    """decode() either returns a well-formed Instruction or raises
    EncodingError — never anything else, never an inconsistent size."""
    try:
        inst = decode(data)
    except EncodingError:
        return
    assert 1 <= inst.size <= len(data) + 0  # never larger than the input
    assert inst.mnemonic
    assert inst.inst_class


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=0, max_size=64))
def test_linear_disassembly_total(data):
    """The scanner's resynchronizing walk terminates on any input and
    every reported instruction re-decodes identically."""
    listing = linear_disassemble(data)
    for offset, mnemonic, size in listing:
        inst = decode(data, offset)
        assert inst.mnemonic == mnemonic
        assert inst.size == size


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=4, max_size=16))
def test_decode_deterministic(data):
    def result():
        try:
            inst = decode(data)
            return (inst.mnemonic, inst.size, inst.imm, inst.reg, inst.rm)
        except EncodingError as error:
            return ("error", str(error))

    assert result() == result()


class TestRiscvDecodeFuzz:
    @settings(max_examples=300, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_decode_total_over_arbitrary_words(self, word):
        from repro.riscv.encoding import EncodingError as RvError
        from repro.riscv.encoding import decode as rv_decode

        try:
            inst = rv_decode(word)
        except RvError:
            return
        assert inst.mnemonic
        assert inst.size == 4
        assert 0 <= inst.rd < 32 and 0 <= inst.rs1 < 32 and 0 <= inst.rs2 < 32

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_decoded_words_reencode_to_themselves(self, word):
        """Round-trip: any decodable word re-encodes bit-exactly (our
        encoder emits canonical forms, which decode covers)."""
        from repro.riscv.encoding import EncodingError as RvError
        from repro.riscv.encoding import decode as rv_decode
        from repro.riscv.encoding import encode as rv_encode

        try:
            inst = rv_decode(word)
        except RvError:
            return
        reencoded = rv_encode(
            inst.mnemonic, rd=inst.rd, rs1=inst.rs1, rs2=inst.rs2,
            imm=inst.imm if inst.csr < 0 else 0,
            csr=inst.csr if inst.csr >= 0 else 0,
        )
        # Canonical fields must survive; reserved bits may differ only
        # where the ISA ignores them (fence, ecall-group encodings).
        if inst.mnemonic not in ("fence", "fence.i", "ecall", "ebreak",
                                 "sret", "mret", "wfi", "sfence.vma"):
            assert reencoded == word
