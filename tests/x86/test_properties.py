"""Differential property tests: random x86 ALU sequences vs a Python
reference."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.x86 import KERNEL_BASE, assemble, build_x86_system

MASK64 = (1 << 64) - 1


def run_source(source):
    system = build_x86_system(with_isagrid=False)
    program = assemble(source, base=KERNEL_BASE)
    system.load(program)
    system.run(program.symbol("entry"), max_steps=1000)
    return system.cpu


BINARY_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
}

VALUE = st.integers(min_value=0, max_value=MASK64)


@settings(max_examples=25, deadline=None)
@given(a=VALUE, b=VALUE, op=st.sampled_from(sorted(BINARY_OPS)))
def test_binary_ops_match_reference(a, b, op):
    cpu = run_source("""
entry:
    mov rbx, %d
    mov rcx, %d
    %s rbx, rcx
    hlt
""" % (a, b, op))
    assert cpu.regs[3] == BINARY_OPS[op](a, b) & MASK64


@settings(max_examples=20, deadline=None)
@given(value=VALUE)
def test_unary_ops(value):
    cpu = run_source("""
entry:
    mov rbx, %d
    mov rcx, rbx
    inc rbx
    mov rdx, rcx
    dec rdx
    mov rsi, rcx
    neg rsi
    mov rdi, rcx
    not rdi
    hlt
""" % value)
    assert cpu.regs[3] == (value + 1) & MASK64
    assert cpu.regs[2] == (value - 1) & MASK64
    assert cpu.regs[6] == (-value) & MASK64
    assert cpu.regs[7] == ~value & MASK64


@settings(max_examples=20, deadline=None)
@given(a=VALUE, b=VALUE)
def test_xchg_swaps(a, b):
    cpu = run_source("""
entry:
    mov rbx, %d
    mov rcx, %d
    xchg rbx, rcx
    hlt
""" % (a, b))
    assert cpu.regs[3] == b and cpu.regs[1] == a


@settings(max_examples=20, deadline=None)
@given(a=VALUE, b=VALUE)
def test_all_condition_codes_consistent(a, b):
    """Each signed/unsigned comparison pair must agree with Python."""
    cpu = run_source("""
entry:
    mov rbx, %d
    mov rcx, %d
    mov r15, 0
    cmp rbx, rcx
    jle le_taken
    jmp le_done
le_taken:
    or r15, 1
le_done:
    cmp rbx, rcx
    ja a_taken
    jmp a_done
a_taken:
    or r15, 2
a_done:
    cmp rbx, rcx
    jg g_taken
    jmp g_done
g_taken:
    or r15, 4
g_done:
    cmp rbx, rcx
    jbe be_taken
    jmp be_done
be_taken:
    or r15, 8
be_done:
    hlt
""" % (a, b))
    signed_a = a - (1 << 64) if a >> 63 else a
    signed_b = b - (1 << 64) if b >> 63 else b
    flags = cpu.regs[15]
    assert bool(flags & 1) == (signed_a <= signed_b)   # jle
    assert bool(flags & 2) == (a > b)                  # ja
    assert bool(flags & 4) == (signed_a > signed_b)    # jg
    assert bool(flags & 8) == (a <= b)                 # jbe


@settings(max_examples=15, deadline=None)
@given(a=VALUE, shift=st.integers(min_value=0, max_value=63))
def test_shifts_match_reference(a, shift):
    cpu = run_source("""
entry:
    mov rbx, %d
    shl rbx, %d
    mov rcx, %d
    shr rcx, %d
    hlt
""" % (a, shift, a, shift))
    assert cpu.regs[3] == (a << shift) & MASK64
    assert cpu.regs[1] == a >> shift


# ---------------------------------------------------------------------------
# Differential flag checks: the CPU's condition codes against an
# arithmetic reference (ZF = result wraps to zero, CF = unsigned borrow,
# SF_LT = the signed-less-than predicate, i.e. SF != OF after a sub).
# ---------------------------------------------------------------------------


def to_signed(value):
    return value - (1 << 64) if value >> 63 else value


def reference_flags(op, a, b):
    """(result, zf, cf, sf_lt) the architecture promises for ``op a, b``."""
    results = {
        "add": a + b, "sub": a - b, "cmp": a - b,
        "and": a & b, "test": a & b, "or": a | b, "xor": a ^ b,
    }
    result = results[op] & MASK64
    subtractive = op in ("sub", "cmp")
    zf = result == 0
    cf = subtractive and a < b            # unsigned borrow out
    if subtractive:
        sf_lt = to_signed(a) < to_signed(b)
    else:
        sf_lt = bool(result >> 63)        # plain sign bit
    return result, zf, cf, sf_lt


FLAG_OPS_RR = ("add", "sub", "and", "or", "xor", "cmp", "test")
FLAG_OPS_IMM = ("add", "sub", "and", "or", "xor", "cmp")
#: Immediates stay below 2^31: larger ones do not fit an imm32 encoding.
IMM = st.integers(min_value=0, max_value=0x7FFFFFFF)


@settings(max_examples=40, deadline=None)
@given(a=VALUE, b=VALUE, op=st.sampled_from(FLAG_OPS_RR))
def test_rr_flags_match_reference(a, b, op):
    cpu = run_source("""
entry:
    mov rbx, %d
    mov rcx, %d
    %s rbx, rcx
    hlt
""" % (a, b, op))
    result, zf, cf, sf_lt = reference_flags(op, a, b)
    assert cpu.zf == zf
    assert cpu.cf == cf
    assert cpu.sf_lt == sf_lt
    # cmp/test only set flags; everything else writes the destination
    assert cpu.regs[3] == (a if op in ("cmp", "test") else result)


@settings(max_examples=30, deadline=None)
@given(a=VALUE, imm=IMM, op=st.sampled_from(FLAG_OPS_IMM))
def test_imm_flags_match_reference(a, imm, op):
    cpu = run_source("""
entry:
    mov rbx, %d
    %s rbx, %d
    hlt
""" % (a, op, imm))
    result, zf, cf, sf_lt = reference_flags(op, a, imm)
    assert (cpu.zf, cpu.cf, cpu.sf_lt) == (zf, cf, sf_lt)
    assert cpu.regs[3] == (a if op == "cmp" else result)


@settings(max_examples=20, deadline=None)
@given(value=VALUE, step=st.sampled_from(("inc", "dec")))
def test_inc_dec_set_zf_and_preserve_cf(value, step):
    # cmp rbx, rcx with 1 < 2 raises CF; inc/dec must not clear it
    # (the x86 idiom of loop counters inside carry chains).
    cpu = run_source("""
entry:
    mov rbx, 1
    mov rcx, 2
    cmp rbx, rcx
    mov rdx, %d
    %s rdx
    hlt
""" % (value, step))
    delta = 1 if step == "inc" else -1
    assert cpu.zf == ((value + delta) & MASK64 == 0)
    assert cpu.cf is True  # untouched from the cmp


@settings(max_examples=20, deadline=None)
@given(value=VALUE)
def test_neg_flags(value):
    cpu = run_source("""
entry:
    mov rbx, %d
    neg rbx
    hlt
""" % value)
    assert cpu.regs[3] == (-value) & MASK64
    assert cpu.zf == (value == 0)
    assert cpu.cf == (value != 0)  # CF set unless the operand was zero


@settings(max_examples=15, deadline=None)
@given(a=VALUE, b=VALUE)
def test_not_preserves_flags(a, b):
    cpu = run_source("""
entry:
    mov rbx, %d
    mov rcx, %d
    cmp rbx, rcx
    mov rdx, rbx
    not rdx
    hlt
""" % (a, b))
    _, zf, cf, sf_lt = reference_flags("cmp", a, b)
    assert (cpu.zf, cpu.cf, cpu.sf_lt) == (zf, cf, sf_lt)


@settings(max_examples=20, deadline=None)
@given(value=VALUE, amount=st.integers(min_value=0, max_value=63),
       op=st.sampled_from(("shl", "shr", "sar")))
def test_shift_zf_matches_reference(value, amount, op):
    cpu = run_source("""
entry:
    mov rbx, %d
    %s rbx, %d
    hlt
""" % (value, op, amount))
    if op == "shl":
        expected = (value << amount) & MASK64
    elif op == "shr":
        expected = value >> amount
    else:
        expected = (to_signed(value) >> amount) & MASK64
    assert cpu.regs[3] == expected
    assert cpu.zf == (expected == 0)


@settings(max_examples=10, deadline=None)
@given(values=st.lists(VALUE, min_size=1, max_size=6))
def test_push_pop_is_lifo(values):
    lines = ["entry:", "    mov rsp, 0x6e0000"]
    for value in values:
        lines += ["    mov rbx, %d" % value, "    push rbx"]
    for index in range(len(values)):
        lines.append("    pop %s" % ("r%d" % (8 + index)))
    lines.append("    hlt")
    cpu = run_source("\n".join(lines) + "\n")
    for index, value in enumerate(reversed(values)):
        assert cpu.regs[8 + index] == value
