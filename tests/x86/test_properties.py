"""Differential property tests: random x86 ALU sequences vs a Python
reference."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.x86 import KERNEL_BASE, assemble, build_x86_system

MASK64 = (1 << 64) - 1


def run_source(source):
    system = build_x86_system(with_isagrid=False)
    program = assemble(source, base=KERNEL_BASE)
    system.load(program)
    system.run(program.symbol("entry"), max_steps=1000)
    return system.cpu


BINARY_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
}

VALUE = st.integers(min_value=0, max_value=MASK64)


@settings(max_examples=25, deadline=None)
@given(a=VALUE, b=VALUE, op=st.sampled_from(sorted(BINARY_OPS)))
def test_binary_ops_match_reference(a, b, op):
    cpu = run_source("""
entry:
    mov rbx, %d
    mov rcx, %d
    %s rbx, rcx
    hlt
""" % (a, b, op))
    assert cpu.regs[3] == BINARY_OPS[op](a, b) & MASK64


@settings(max_examples=20, deadline=None)
@given(value=VALUE)
def test_unary_ops(value):
    cpu = run_source("""
entry:
    mov rbx, %d
    mov rcx, rbx
    inc rbx
    mov rdx, rcx
    dec rdx
    mov rsi, rcx
    neg rsi
    mov rdi, rcx
    not rdi
    hlt
""" % value)
    assert cpu.regs[3] == (value + 1) & MASK64
    assert cpu.regs[2] == (value - 1) & MASK64
    assert cpu.regs[6] == (-value) & MASK64
    assert cpu.regs[7] == ~value & MASK64


@settings(max_examples=20, deadline=None)
@given(a=VALUE, b=VALUE)
def test_xchg_swaps(a, b):
    cpu = run_source("""
entry:
    mov rbx, %d
    mov rcx, %d
    xchg rbx, rcx
    hlt
""" % (a, b))
    assert cpu.regs[3] == b and cpu.regs[1] == a


@settings(max_examples=20, deadline=None)
@given(a=VALUE, b=VALUE)
def test_all_condition_codes_consistent(a, b):
    """Each signed/unsigned comparison pair must agree with Python."""
    cpu = run_source("""
entry:
    mov rbx, %d
    mov rcx, %d
    mov r15, 0
    cmp rbx, rcx
    jle le_taken
    jmp le_done
le_taken:
    or r15, 1
le_done:
    cmp rbx, rcx
    ja a_taken
    jmp a_done
a_taken:
    or r15, 2
a_done:
    cmp rbx, rcx
    jg g_taken
    jmp g_done
g_taken:
    or r15, 4
g_done:
    cmp rbx, rcx
    jbe be_taken
    jmp be_done
be_taken:
    or r15, 8
be_done:
    hlt
""" % (a, b))
    signed_a = a - (1 << 64) if a >> 63 else a
    signed_b = b - (1 << 64) if b >> 63 else b
    flags = cpu.regs[15]
    assert bool(flags & 1) == (signed_a <= signed_b)   # jle
    assert bool(flags & 2) == (a > b)                  # ja
    assert bool(flags & 4) == (signed_a > signed_b)    # jg
    assert bool(flags & 8) == (a <= b)                 # jbe


@settings(max_examples=15, deadline=None)
@given(a=VALUE, shift=st.integers(min_value=0, max_value=63))
def test_shifts_match_reference(a, shift):
    cpu = run_source("""
entry:
    mov rbx, %d
    shl rbx, %d
    mov rcx, %d
    shr rcx, %d
    hlt
""" % (a, shift, a, shift))
    assert cpu.regs[3] == (a << shift) & MASK64
    assert cpu.regs[1] == a >> shift


@settings(max_examples=10, deadline=None)
@given(values=st.lists(VALUE, min_size=1, max_size=6))
def test_push_pop_is_lifo(values):
    lines = ["entry:", "    mov rsp, 0x6e0000"]
    for value in values:
        lines += ["    mov rbx, %d" % value, "    push rbx"]
    for index in range(len(values)):
        lines.append("    pop %s" % ("r%d" % (8 + index)))
    lines.append("    hlt")
    cpu = run_source("\n".join(lines) + "\n")
    for index, value in enumerate(reversed(values)):
        assert cpu.regs[8 + index] == value
