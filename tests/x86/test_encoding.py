"""x86 variable-length encode/decode."""

import pytest
from hypothesis import given, strategies as st

from repro.x86.encoding import Encoder, EncodingError, decode, simple_bytes


class TestSimpleOpcodes:
    @pytest.mark.parametrize("mnemonic,expected", [
        ("nop", b"\x90"),
        ("ret", b"\xC3"),
        ("hlt", b"\xF4"),
        ("syscall", b"\x0F\x05"),
        ("rdmsr", b"\x0F\x32"),
        ("wrmsr", b"\x0F\x30"),
        ("rdtsc", b"\x0F\x31"),
        ("cpuid", b"\x0F\xA2"),
        ("wbinvd", b"\x0F\x09"),
        ("wrpkru", b"\x0F\x01\xEF"),
        ("rdpkru", b"\x0F\x01\xEE"),
    ])
    def test_real_encodings(self, mnemonic, expected):
        assert simple_bytes(mnemonic) == expected
        inst = decode(expected)
        assert inst.mnemonic == mnemonic
        assert inst.size == len(expected)


class TestModrmForms:
    def test_mov_reg_reg(self):
        code = Encoder.rr(0x89, reg=3, rm=0)  # mov rax, rbx
        inst = decode(code)
        assert inst.mnemonic == "mov_rr"
        assert inst.reg == 0 and inst.rm == 3  # normalized: reg = dest

    def test_mov_imm64(self):
        code = Encoder.mov_imm64(0, 0x1122334455667788)
        inst = decode(code)
        assert inst.mnemonic == "mov_imm"
        assert inst.imm == 0x1122334455667788
        assert inst.size == 10

    def test_mov_load_store(self):
        load = decode(Encoder.mem(0x8B, reg=1, base=3, disp=16))
        assert load.mnemonic == "mov_load" and load.base == 3 and load.disp == 16
        store = decode(Encoder.mem(0x89, reg=1, base=3, disp=-8))
        assert store.mnemonic == "mov_store" and store.disp == -8

    def test_rsp_base_requires_sib(self):
        with pytest.raises(EncodingError):
            Encoder.mem(0x8B, reg=0, base=4, disp=0)

    def test_extended_registers_via_rex(self):
        code = Encoder.rr(0x01, reg=8, rm=15)  # add r15, r8
        inst = decode(code)
        assert inst.mnemonic == "add"
        assert inst.reg == 8 and inst.rm == 15

    def test_alu_imm(self):
        inst = decode(Encoder.alu_imm("sub", rm=2, imm=100))
        assert inst.mnemonic == "sub_imm" and inst.imm == 100 and inst.rm == 2

    def test_shift_imm(self):
        inst = decode(Encoder.shift_imm("shl", rm=1, imm=5))
        assert inst.mnemonic == "shl" and inst.imm == 5

    def test_push_pop(self):
        assert decode(Encoder.push_pop("push", 0)).mnemonic == "push"
        inst = decode(Encoder.push_pop("pop", 9))
        assert inst.mnemonic == "pop" and inst.reg == 9

    def test_rel32_branches(self):
        inst = decode(Encoder.rel32((0xE8,), -100))
        assert inst.mnemonic == "call" and inst.imm == -100
        inst = decode(Encoder.rel32((0x0F, 0x85), 64))
        assert inst.mnemonic == "jne" and inst.imm == 64


class TestSystemInstructions:
    def test_mov_cr(self):
        read = decode(Encoder.mov_cr(3, reg=0, to_cr=False))
        assert read.mnemonic == "mov_from_cr" and read.sysreg == 3
        write = decode(Encoder.mov_cr(4, reg=1, to_cr=True))
        assert write.mnemonic == "mov_to_cr" and write.to_system

    def test_mov_dr(self):
        write = decode(Encoder.mov_dr(7, reg=2, to_dr=True))
        assert write.mnemonic == "mov_to_dr" and write.sysreg == 7

    def test_group01_descriptor_ops(self):
        lidt = decode(Encoder.group01(3, base=0, disp=0x40))
        assert lidt.mnemonic == "lidt" and lidt.disp == 0x40 and lidt.is_mem
        sgdt = decode(Encoder.group01(0, base=1, disp=0))
        assert sgdt.mnemonic == "sgdt"

    def test_int_vector(self):
        inst = decode(bytes([0xCD, 0x80]))
        assert inst.mnemonic == "int" and inst.vector == 0x80

    def test_grid_instructions(self):
        hccall = decode(Encoder.grid("hccall", reg=10))
        assert hccall.mnemonic == "hccall" and hccall.rm == 10
        hcrets = decode(Encoder.grid("hcrets"))
        assert hcrets.mnemonic == "hcrets" and hcrets.size == 3

    def test_grid_bytes_are_stable(self):
        """The attack payloads hard-code hccall r10 = 49 0F 0A C2."""
        assert Encoder.grid("hccall", reg=10) == bytes([0x49, 0x0F, 0x0A, 0xC2])


class TestDecodeErrors:
    def test_truncated(self):
        with pytest.raises(EncodingError):
            decode(b"\x0F")
        with pytest.raises(EncodingError):
            decode(b"\x48\xB8\x01")  # truncated imm64

    def test_unknown_opcode(self):
        with pytest.raises(EncodingError):
            decode(b"\xD6")

    def test_unknown_0f_opcode(self):
        with pytest.raises(EncodingError):
            decode(b"\x0F\xFF")


class TestVariableLengthOverlap:
    """The property the whole §2.3 argument rests on: the same bytes
    decode differently at different offsets."""

    def test_bytes_hidden_in_immediate(self):
        hidden = simple_bytes("wrmsr") + b"\xC3" + b"\x90" * 5
        carrier = bytes([0x48, 0xB8]) + hidden  # mov rax, imm64
        outer = decode(carrier)
        assert outer.mnemonic == "mov_imm" and outer.size == 10
        inner = decode(carrier, offset=2)
        assert inner.mnemonic == "wrmsr"

    @given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_mov_imm_roundtrip(self, reg, imm):
        inst = decode(Encoder.mov_imm64(reg, imm))
        assert inst.reg == reg and inst.imm == imm

    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    def test_disp32_roundtrip(self, disp):
        inst = decode(Encoder.mem(0x8B, reg=0, base=1, disp=disp))
        assert inst.disp == disp
