"""The x86 assembler."""

import pytest

from repro.x86 import assemble, decode
from repro.x86.assembler import AssemblerError


def decode_all(program):
    out = []
    offset = 0
    while offset < len(program.data):
        inst = decode(program.data, offset)
        out.append(inst)
        offset += inst.size
    return out


class TestBasics:
    def test_simple_program(self):
        program = assemble("entry:\n    mov rax, 5\n    hlt\n", base=0x1000)
        instructions = decode_all(program)
        assert [i.mnemonic for i in instructions] == ["mov_imm", "hlt"]
        assert program.symbol("entry") == 0x1000

    def test_mov_forms(self):
        program = assemble("""
            mov rax, 42
            mov rbx, rax
            mov [rbx+8], rax
            mov rcx, [rbx+8]
            mov cr3, rax
            mov rax, cr3
            mov dr0, rbx
        """, base=0)
        mnemonics = [i.mnemonic for i in decode_all(program)]
        assert mnemonics == [
            "mov_imm", "mov_rr", "mov_store", "mov_load",
            "mov_to_cr", "mov_from_cr", "mov_to_dr",
        ]

    def test_mov_label_as_imm64(self):
        program = assemble("""
        entry:
            mov rax, target
            hlt
        target:
            nop
        """, base=0x5000)
        first = decode_all(program)[0]
        assert first.imm == program.symbol("target")

    def test_branches_resolve(self):
        program = assemble("""
        top:
            cmp rax, rbx
            je top
            jmp top
        """, base=0)
        cmp_inst, je, jmp = decode_all(program)
        assert je.imm == -(cmp_inst.size + je.size)
        assert jmp.imm == -(cmp_inst.size + je.size + jmp.size)

    def test_negative_displacement(self):
        program = assemble("mov rax, [rbp-16]\n", base=0)
        (inst,) = decode_all(program)
        assert inst.disp == -16

    def test_comments(self):
        program = assemble("nop ; c1\n nop # c2\n", base=0)
        assert program.size == 2

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("xyzzy rax\n")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("a:\nnop\na:\nnop\n")


class TestDirectives:
    def test_byte_emission(self):
        program = assemble(".byte 0x0F, 0x30\n", base=0)
        assert program.data == b"\x0F\x30"

    def test_zero(self):
        program = assemble(".zero 5\nnop\n", base=0)
        assert program.data[:5] == b"\x00" * 5

    def test_align_pads_with_nops(self):
        program = assemble("nop\n.align 8\nhere:\nnop\n", base=0)
        assert program.symbol("here") == 8
        assert program.data[1:8] == b"\x90" * 7

    def test_labels_between_bytes(self):
        """Labels inside .byte runs let attacks jump mid-instruction."""
        program = assemble("""
        carrier:
            .byte 0x48, 0xBB
        hidden:
            .byte 0x0F, 0x30
        """, base=0x100)
        assert program.symbol("hidden") == 0x102


class TestSystemSyntax:
    def test_descriptor_ops(self):
        program = assemble("lidt [rax+64]\n    sgdt [rbx+0]\n", base=0)
        lidt, sgdt = decode_all(program)
        assert lidt.mnemonic == "lidt" and lidt.disp == 64
        assert sgdt.mnemonic == "sgdt"

    def test_grid_ops(self):
        program = assemble("hccall r10\n    hccalls rax\n    hcrets\n    pfch rbx\n", base=0)
        mnemonics = [i.mnemonic for i in decode_all(program)]
        assert mnemonics == ["hccall", "hccalls", "hcrets", "pfch"]

    def test_int_and_io(self):
        program = assemble("int 0x80\n    in 0x60\n    out 0x60\n", base=0)
        i, inb, outb = decode_all(program)
        assert i.vector == 0x80
        assert inb.mnemonic == "in" and outb.mnemonic == "out"

    def test_lldt(self):
        program = assemble("lldt rbx\n", base=0)
        (inst,) = decode_all(program)
        assert inst.mnemonic == "lldt" and inst.rm == 3

    def test_two_pass_sizes_stable(self):
        """Forward references must produce the same encoding size."""
        program = assemble("""
        entry:
            jmp far_away
            mov rax, far_away
        far_away:
            nop
        """, base=0)
        assert program.symbol("far_away") == 5 + 10
