"""The MiniKernel syscall dispatch over the PCU (conformance surface)."""

import pytest

from repro.conformance import (
    BACKEND_NAMES,
    CONFORMANCE_CONFIGS,
    ConformanceWorld,
    fuzz_backend,
    generate_events,
    make_backend,
)
from repro.core import AccessInfo, GateKind, InstructionPrivilegeFault
from repro.kernel import (
    MiniKernelSyscallLayer,
    SYS_DCONF,
    SYS_PCHECK,
    SYS_PGATE,
    SYS_SCRUB,
)


@pytest.fixture
def layered():
    world = ConformanceWorld(make_backend("riscv"),
                             CONFORMANCE_CONFIGS["stress"], layer="kernel")
    return world, world.kernel_layer


class TestDispatch:
    def test_pcheck_routes_to_pcu(self, layered):
        world, layer = layered
        backend = world.backend
        layer.syscall(SYS_DCONF, "allow_instructions", world.slot_ids[1],
                      [backend.inst_name(0)])
        gate = layer.syscall(SYS_DCONF, "register_gate", 0x40_0000, 0x50_0000,
                             world.slot_ids[1], gate_id=0)
        layer.syscall(SYS_PGATE, GateKind.HCCALL, 0, 0x40_0000)
        layer.syscall(SYS_PCHECK,
                      AccessInfo(inst_class=backend.inst_class(0)))
        assert layer.syscall_counts["pcheck"] == 1
        assert layer.syscall_counts["dconf"] == 2

    def test_faults_propagate_and_count(self, layered):
        world, layer = layered
        backend = world.backend
        layer.syscall(SYS_DCONF, "register_gate", 0x40_0000, 0x50_0000,
                      world.slot_ids[1], gate_id=0)
        layer.syscall(SYS_PGATE, GateKind.HCCALL, 0, 0x40_0000)
        with pytest.raises(InstructionPrivilegeFault):
            layer.syscall(SYS_PCHECK,
                          AccessInfo(inst_class=backend.inst_class(0)))
        assert layer.fault_counts["InstructionPrivilegeFault"] == 1

    def test_unknown_syscall_rejected(self, layered):
        _world, layer = layered
        with pytest.raises(ValueError):
            layer.syscall(999)

    def test_dconf_surface_is_closed(self, layered):
        """SYS_DCONF must not become an RPC into arbitrary manager code."""
        _world, layer = layered
        with pytest.raises(ValueError):
            layer.syscall(SYS_DCONF, "_descriptor", 0)
        with pytest.raises(ValueError):
            layer.syscall(SYS_DCONF, "describe")

    def test_scrub_syscall_runs_integrity_pass(self, layered):
        world, layer = layered
        report = layer.syscall(SYS_SCRUB)
        assert report.clean
        assert world.pcu.stats.scrubs == 1


class TestKernelLayerLockstep:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_kernel_layer_replay_is_oracle_identical(self, backend):
        result = fuzz_backend(backend, seed=5, count=500, config="draco",
                              layer="kernel")
        assert result.clean, result.divergence and result.divergence.describe()
        assert result.layer == "kernel"

    def test_kernel_layer_counts_every_data_path_call(self):
        world = ConformanceWorld(make_backend("riscv"),
                                 CONFORMANCE_CONFIGS["stress"],
                                 layer="kernel")
        for event in generate_events(2, 300):
            world.apply(event)
        counts = world.kernel_layer.syscall_counts
        assert counts["pcheck"] > 0
        assert counts["pgate"] > 0
        assert counts["pmem"] > 0
        assert counts["dconf"] > 0

    def test_layer_matches_bare_pcu_outcomes(self):
        events = generate_events(8, 300)
        statuses = {}
        for layer in ("pcu", "kernel"):
            world = ConformanceWorld(make_backend("riscv"),
                                     CONFORMANCE_CONFIGS["stress"],
                                     layer=layer)
            statuses[layer] = [world.apply(e)[0].status for e in events]
        assert statuses["pcu"] == statuses["kernel"]

    def test_unknown_layer_rejected(self):
        with pytest.raises(ValueError):
            ConformanceWorld(make_backend("riscv"),
                             CONFORMANCE_CONFIGS["stress"], layer="bogus")
