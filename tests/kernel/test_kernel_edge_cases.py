"""Kernel robustness: unknown syscalls, fault storms, halting."""

import pytest

from repro.kernel import RiscvKernel, X86Kernel
from repro.riscv import USER_BASE as RUB
from repro.riscv import assemble as rasm
from repro.x86 import USER_BASE as XUB
from repro.x86 import assemble as xasm


class TestUnknownSyscalls:
    def test_riscv_unknown_syscall_is_ignored(self):
        kernel = RiscvKernel("decomposed")
        program = rasm("""
user_entry:
    li a7, 99
    ecall
    li a7, 1
    ecall
    mv s0, a0
    li a7, 0
    mv a0, s0
    ecall
""", base=RUB)
        kernel.run(program, max_steps=100_000)
        assert kernel.cpu.exit_code == 42
        assert kernel.syscall_count == 3

    def test_x86_unknown_syscall_returns_minus_one(self):
        kernel = X86Kernel("decomposed")
        program = xasm("""
user_entry:
    mov rsp, 0x6f0000
    mov rax, 99
    syscall
    mov rdi, rax
    mov rax, 0
    syscall
""", base=XUB)
        kernel.run(program, max_steps=100_000)
        assert kernel.cpu.exit_code == (-1) & (1 << 64) - 1


class TestFaultStorm:
    def test_riscv_survives_many_blocked_attempts(self):
        """A fault per loop iteration must not wedge the trap stack."""
        kernel = RiscvKernel("decomposed")
        program = rasm("""
user_entry:
    li s2, 100
loop:
    li a7, 16
    la a0, attack
    li a1, 0
    ecall
    addi s2, s2, -1
    bnez s2, loop
    li a7, 0
    li a0, 5
    ecall
attack:
    csrw stvec, t5
    csrw satp, t5
    ret
""", base=RUB)
        stats = kernel.run(program, max_steps=2_000_000)
        assert kernel.fault_count == 200
        assert kernel.cpu.exit_code == 5
        assert stats.halted

    def test_user_mode_privilege_violations_also_counted(self):
        """User code poking CSRs hits the privilege-LEVEL check (cause 2),
        which rides the same fault path."""
        kernel = RiscvKernel("decomposed")
        program = rasm("""
user_entry:
    csrw satp, t0
    li a7, 0
    li a0, 3
    ecall
""", base=RUB)
        kernel.run(program, max_steps=100_000)
        assert kernel.fault_count == 1
        assert kernel.last_fault_cause == 2  # illegal instruction
        assert kernel.cpu.exit_code == 3


class TestHalting:
    def test_exit_code_passes_through(self):
        kernel = RiscvKernel("native")
        program = rasm("""
user_entry:
    li a7, 0
    li a0, 123
    ecall
""", base=RUB)
        kernel.run(program, max_steps=10_000)
        assert kernel.cpu.exit_code == 123

    def test_runaway_user_program_raises(self):
        from repro.sim import SimulationLimitExceeded

        kernel = RiscvKernel("native")
        program = rasm("""
user_entry:
loop:
    j loop
""", base=RUB)
        with pytest.raises(SimulationLimitExceeded):
            kernel.run(program, max_steps=5_000)
