"""Use case §6.4: the PrivBox/Dune-style in-kernel sandbox."""

import pytest

from repro.kernel.sandbox import SANDBOX_CLASSES, run_sandbox
from repro.riscv import RISCV_ISA_MAP


class TestSandbox:
    def test_compute_guest_runs_clean(self):
        result = run_sandbox("""
            li a0, 0
            li t1, 50
        loop:
            addi a0, a0, 2
            addi t1, t1, -1
            bnez t1, loop
            halt
        """)
        assert result.clean
        assert result.exit_code == 100

    def test_privileged_instructions_blocked_and_counted(self):
        result = run_sandbox("""
            li t5, 0xbad
            csrw satp, t5
            csrw stvec, t5
            sfence.vma
            li a0, 1
            halt
        """)
        assert result.blocked_attempts == 3
        assert result.exit_code == 1  # the host survives every attempt

    def test_escape_attempt_leaves_no_trace(self):
        """The classic Dune worry: guest flips the page-table base."""
        result = run_sandbox("""
            li t5, 0xdeadbeef
            csrw satp, t5
            li a0, 0
            halt
        """)
        assert result.blocked_attempts == 1

    def test_csr_reads_not_granted_by_default(self):
        result = run_sandbox("""
            csrr a0, satp
            li a0, 5
            halt
        """)
        assert result.blocked_attempts == 1
        assert result.exit_code == 5

    def test_extra_readable_csr_grant(self):
        """Hosts may expose selected read-only state (e.g. Dune exposes
        the page-table root for introspection)."""
        result = run_sandbox("""
            csrr a0, satp
            halt
        """, extra_readable_csrs=("satp",))
        assert result.clean
        assert result.exit_code == 0  # satp reads back 0

    def test_gate_forgery_from_guest_blocked(self):
        result = run_sandbox("""
            li t5, 0
            hccall t5
            li a0, 9
            halt
        """)
        assert result.blocked_attempts == 1
        assert result.exit_code == 9

    def test_sandbox_classes_exclude_all_system_classes(self):
        system_classes = {
            "csr", "sret", "mret", "wfi", "sfence_vma", "ecall",
            "hccall", "hccalls", "hcrets", "pfch", "pflh",
        }
        assert not set(SANDBOX_CLASSES) & system_classes
        # ... and everything listed exists in the real ISA map
        for name in SANDBOX_CLASSES:
            RISCV_ISA_MAP.inst_class(name)
