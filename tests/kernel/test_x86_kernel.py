"""The x86 MiniKernel: boot, syscalls, services, nested monitor."""

import pytest

from repro.kernel import (
    SERVICE_CPUID,
    SERVICE_MTRR,
    SERVICE_PMC_IRQ,
    SERVICE_PMC_MISS,
    SERVICE_VOLTAGE,
    X86Kernel,
)
from repro.kernel.x86_kernel import DATA_BASE, OFF_MON_LOG, OFF_PT_AREA
from repro.x86 import USER_BASE, assemble


def user(source):
    return assemble(source, base=USER_BASE)


EXERCISER = user("""
user_entry:
    mov rsp, 0x6f0000
    mov rax, 1          # getpid
    syscall
    mov r12, rax
    mov rax, 2          # read
    mov rdi, 0x620000
    mov rsi, 64
    syscall
    mov rax, 3          # write
    mov rdi, 0x620000
    mov rsi, 64
    syscall
    mov rax, 6          # open
    mov rdi, 0x1234
    syscall
    mov rax, 9          # mmap
    mov rdi, 0x5000
    syscall
    mov rax, 8          # sigaction
    mov rdi, 3
    mov rsi, 0x400100
    syscall
    mov rax, 13         # yield
    syscall
    mov rax, 0
    mov rdi, r12
    syscall
""")


@pytest.fixture(scope="module", params=["native", "decomposed"])
def booted(request):
    kernel = X86Kernel(request.param)
    stats = kernel.run(EXERCISER, max_steps=300_000)
    return kernel, stats


class TestBothModes:
    def test_exit_code_is_pid(self, booted):
        kernel, _ = booted
        assert kernel.cpu.exit_code == 42

    def test_syscalls_counted(self, booted):
        kernel, _ = booted
        assert kernel.syscall_count == 8

    def test_no_spurious_faults(self, booted):
        kernel, _ = booted
        assert kernel.fault_count == 0

    def test_mmap_wrote_cr3(self, booted):
        kernel, _ = booted
        assert kernel.cpu.sys.cr3 == 0x5000

    def test_smap_bit_restored_after_copies(self, booted):
        kernel, _ = booted
        from repro.x86 import CR4_SMAP

        assert not kernel.cpu.sys.cr4 & CR4_SMAP

    def test_boot_hardened_spec_ctrl(self, booted):
        kernel, _ = booted
        assert kernel.cpu.sys.msrs[0x48] == 1


SERVICES = user("""
user_entry:
    mov rsp, 0x6f0000
    mov rax, 12
    mov rdi, 1          # cpuid service
    syscall
    mov r12, rax
    mov rax, 12
    mov rdi, 2          # mtrr service
    syscall
    mov r13, rax
    mov rax, 12
    mov rdi, 3          # pmc interrupts
    syscall
    mov rax, 12
    mov rdi, 4          # pmc misses
    syscall
    mov r14, rax
    mov rax, 12
    mov rdi, 5          # voltage read
    syscall
    mov rax, 0
    mov rdi, r13
    syscall
""")


class TestServices:
    @pytest.fixture(scope="class", params=["native", "decomposed"])
    def kernel(self, request):
        kernel = X86Kernel(request.param)
        kernel.run(SERVICES, max_steps=300_000)
        return kernel

    def test_all_services_complete(self, kernel):
        assert kernel.fault_count == 0
        assert kernel.syscall_count == 6

    def test_mtrr_service_returns_memory_type(self, kernel):
        assert kernel.cpu.exit_code == 0x6  # write-back from MTRR base


class TestDecomposedSpecifics:
    def test_domains(self):
        kernel = X86Kernel("decomposed")
        expected = {"kernel", "vm", "fpu", "ldt", "power", "mtrr",
                    "cpuid", "pmu", "debug", "monitor", "domain-0"}
        assert set(kernel.domains) == expected

    def test_kernel_domain_has_only_smap_bit_of_cr4(self):
        kernel = X86Kernel("decomposed")
        from repro.x86 import CR4_SMAP, CSR_INDEX

        manager = kernel.system.manager
        cr4 = CSR_INDEX["cr4"]
        slot = manager.isa_map.mask_slot(cr4)
        mask = kernel.system.pcu.hpt.read_mask(kernel.domains["kernel"], slot)
        assert mask == CR4_SMAP

    def test_overhead_shape(self):
        """Figure 7 shape: amortized decomposition overhead is small."""
        loop = user("""
        user_entry:
            mov rsp, 0x6f0000
            mov r12, 200
        loop:
            mov rax, 1
            syscall
            mov rax, 4
            syscall
            sub r12, 1
            jne loop
            mov rax, 0
            mov rdi, 0
            syscall
        """)
        native = X86Kernel("native").run(loop, max_steps=600_000)
        decomposed = X86Kernel("decomposed").run(loop, max_steps=600_000)
        assert decomposed.cycles / native.cycles < 1.03


MMAP_LOOP = user("""
user_entry:
    mov rsp, 0x6f0000
    mov r12, 100
loop:
    mov rax, 9
    mov rdi, 0x77
    syscall
    sub r12, 1
    jne loop
    mov rax, 0
    mov rdi, 0
    syscall
""")


class TestNestedKernel:
    def test_monitor_writes_page_table(self):
        kernel = X86Kernel("decomposed", variant="nested")
        kernel.run(MMAP_LOOP, max_steps=300_000)
        assert kernel.fault_count == 0
        assert kernel.memory.load(DATA_BASE + OFF_PT_AREA, 8) == 0x77

    def test_log_variant_records_modifications(self):
        kernel = X86Kernel("decomposed", variant="nested_log")
        kernel.run(MMAP_LOOP, max_steps=300_000)
        assert kernel.memory.load(DATA_BASE + OFF_MON_LOG, 8) == 0x77

    def test_wp_set_after_mediation(self):
        """The exit path re-enables CR0.WP so page tables stay RO."""
        kernel = X86Kernel("decomposed", variant="nested")
        kernel.run(MMAP_LOOP, max_steps=300_000)
        from repro.x86 import CR0_WP

        assert kernel.cpu.sys.cr0 & CR0_WP

    def test_outer_kernel_cannot_write_cr3_in_nested_mode(self):
        """In the nested variant the vm gate isn't registered; only the
        monitor touches page-table state."""
        kernel = X86Kernel("decomposed", variant="nested")
        gate_names = {site.name for site in kernel.gate_plan}
        assert "write_cr3" not in gate_names
        assert "mon_enter" in gate_names and "mon_exit" in gate_names

    def test_bad_variant_rejected(self):
        with pytest.raises(ValueError):
            X86Kernel("decomposed", variant="wat")

    def test_nested_overhead_over_plain_is_small(self):
        """Figure 8 shape: the mediated monitor costs little once hot.
        (The mmap-only loop here is the worst case — every syscall is a
        mediated page-table write; real apps amortize far below this.)"""
        plain = X86Kernel("native").run(MMAP_LOOP, max_steps=600_000)
        nested = X86Kernel("decomposed", variant="nested").run(MMAP_LOOP, max_steps=600_000)
        assert nested.cycles / plain.cycles < 1.25
