"""The RISC-V MiniKernel: boot, syscalls, decomposition semantics."""

import pytest

from repro.kernel import RiscvKernel
from repro.kernel.syscalls import SYS_GETPID
from repro.riscv import USER_BASE, assemble


def user(source):
    return assemble(source, base=USER_BASE)


EXERCISER = user("""
user_entry:
    li a7, 1          # getpid
    ecall
    mv s0, a0
    li a7, 2          # read
    li a0, 0x620000
    li a1, 64
    ecall
    li a7, 3          # write
    li a0, 0x620000
    li a1, 64
    ecall
    li a7, 6          # open
    li a0, 0x1234
    ecall
    mv s1, a0
    li a7, 7          # close
    mv a0, s1
    ecall
    li a7, 9          # mmap
    li a0, 0x8000
    ecall
    li a7, 8          # sigaction
    li a0, 3
    li a1, 0x400100
    ecall
    li a7, 13         # yield
    ecall
    li a7, 15         # select
    ecall
    li a7, 0
    mv a0, s0
    ecall
""")


@pytest.fixture(scope="module", params=["native", "decomposed"])
def booted(request):
    kernel = RiscvKernel(request.param)
    stats = kernel.run(EXERCISER, max_steps=300_000)
    return kernel, stats


class TestBothModes:
    def test_exits_with_pid(self, booted):
        kernel, _ = booted
        assert kernel.cpu.exit_code == 42

    def test_syscalls_counted(self, booted):
        kernel, _ = booted
        assert kernel.syscall_count == 10

    def test_no_spurious_faults(self, booted):
        kernel, _ = booted
        assert kernel.fault_count == 0

    def test_mmap_wrote_satp(self, booted):
        kernel, _ = booted
        from repro.riscv import CSR_ADDRESS

        assert kernel.cpu.csrs[CSR_ADDRESS["satp"]] == 0x8000

    def test_sigaction_set_sie(self, booted):
        kernel, _ = booted
        from repro.riscv import CSR_ADDRESS

        assert kernel.cpu.csrs[CSR_ADDRESS["sie"]] & 2


class TestDecomposedSpecifics:
    @pytest.fixture(scope="class")
    def kernel(self):
        kernel = RiscvKernel("decomposed")
        kernel.run(EXERCISER, max_steps=300_000)
        return kernel

    def test_domains_created(self, kernel):
        assert set(kernel.domains) == {
            "kernel", "vm", "irq", "ctx", "misc", "domain-0",
        }

    def test_gates_registered(self, kernel):
        assert kernel.system.pcu.sgt.gate_nr == len(kernel.gate_plan)

    def test_domain_switches_happened(self, kernel):
        # leave-d0 + (mmap, sigaction, yield) round trips
        assert kernel.system.pcu.stats.domain_switches >= 7

    def test_ends_in_basic_domain(self, kernel):
        assert kernel.system.pcu.current_domain == kernel.domains["kernel"]

    def test_vm_domain_cannot_be_entered_without_gate(self, kernel):
        from repro.core import GateFault
        from repro.core.isa_extension import GateKind

        with pytest.raises(GateFault):
            kernel.system.pcu.execute_gate(GateKind.HCCALL, 999, 0x1)

    def test_hit_rates_high_after_gate_heavy_run(self):
        """Section 7.1 shape: caches reach very high hit rates once the
        gated kernel paths are hot."""
        loop = user("""
        user_entry:
            li s2, 60
        outer:
            li a7, 9
            li a0, 0x8000
            ecall
            li a7, 8
            li a0, 3
            li a1, 0x400100
            ecall
            li a7, 13
            ecall
            addi s2, s2, -1
            bnez s2, outer
            li a7, 0
            li a0, 0
            ecall
        """)
        kernel = RiscvKernel("decomposed")
        kernel.run(loop, max_steps=500_000)
        rates = kernel.system.pcu.stats.hit_rates()
        assert rates["inst"] > 0.95
        assert rates["sgt"] > 0.95
        assert rates["reg"] > 0.95

    def test_native_has_no_pcu(self):
        assert RiscvKernel("native").system.pcu is None

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            RiscvKernel("bogus")

    def test_user_program_must_sit_at_user_base(self):
        kernel = RiscvKernel("native")
        with pytest.raises(ValueError):
            kernel.load_user(assemble("nop\n", base=0x1000))


class TestOverheadShape:
    def test_decomposition_overhead_is_small(self):
        """Figure 5/6 shape: decomposed ≈ native (well under 5% here)."""
        loop = user("""
        user_entry:
            li s2, 150
        outer:
            li a7, %d
            ecall
            addi s2, s2, -1
            bnez s2, outer
            li a7, 0
            li a0, 0
            ecall
        """ % SYS_GETPID)
        native = RiscvKernel("native").run(loop, max_steps=500_000)
        decomposed = RiscvKernel("decomposed").run(loop, max_steps=500_000)
        ratio = decomposed.cycles / native.cycles
        assert 0.99 < ratio < 1.05

    def test_pti_variant_is_slower(self):
        loop = user("""
        user_entry:
            li s2, 100
        outer:
            li a7, 1
            ecall
            addi s2, s2, -1
            bnez s2, outer
            li a7, 0
            li a0, 0
            ecall
        """)
        plain = RiscvKernel("native").run(loop, max_steps=500_000)
        pti = RiscvKernel("native", pti=True).run(loop, max_steps=500_000)
        assert pti.cycles > plain.cycles * 1.05
