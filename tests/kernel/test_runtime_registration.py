"""Runtime domain/gate registration through domain-0 (§5.2).

The paper allows gates to be registered at runtime: a kernel component
calls a special gate into domain-0, whose software writes the new SGT
entry into trusted memory and returns the gate id.  Our MiniKernel
exposes this as ``SYS_REGISTER``; ``SYS_MMAP2``'s gate only exists
after such a call.
"""

import pytest

from repro.kernel import RiscvKernel
from repro.kernel.riscv_kernel import DATA_BASE, META_NEXT_GATE, OFF_RT_GATE
from repro.riscv import CSR_ADDRESS, USER_BASE, assemble


def registration_program(kernel, *, register_first=True, satp_value=0x2222):
    body = """
    li a7, 17
    li a0, %d
    li a1, %d
    li a2, %d
    ecall
""" % (kernel.symbol("g_mmap2"), kernel.symbol("fn_set_satp"), kernel.domains["vm"])
    source = """
user_entry:
%s
    li a7, 18
    li a0, %d
    ecall
    li a7, 0
    li a0, 0
    ecall
""" % (body if register_first else "    nop", satp_value)
    return assemble(source, base=USER_BASE)


class TestRuntimeRegistration:
    def test_gate_usable_after_registration(self):
        kernel = RiscvKernel("decomposed")
        kernel.run(registration_program(kernel), max_steps=300_000)
        assert kernel.fault_count == 0
        assert kernel.cpu.csrs[CSR_ADDRESS["satp"]] == 0x2222

    def test_gate_unusable_before_registration(self):
        kernel = RiscvKernel("decomposed")
        kernel.run(registration_program(kernel, register_first=False), max_steps=300_000)
        assert kernel.fault_count >= 1
        assert kernel.cpu.csrs[CSR_ADDRESS["satp"]] == 0

    def test_gate_id_continues_boot_sequence(self):
        kernel = RiscvKernel("decomposed")
        boot_gates = kernel.system.pcu.sgt.gate_nr
        kernel.run(registration_program(kernel), max_steps=300_000)
        assert kernel.memory.load(DATA_BASE + OFF_RT_GATE, 8) == boot_gates
        assert kernel.memory.load(META_NEXT_GATE, 8) == boot_gates + 1

    def test_registered_entry_lands_in_sgt(self):
        kernel = RiscvKernel("decomposed")
        kernel.run(registration_program(kernel), max_steps=300_000)
        gate_id = kernel.memory.load(DATA_BASE + OFF_RT_GATE, 8)
        entry = kernel.system.pcu.sgt.read_entry(gate_id)
        assert entry.gate_address == kernel.symbol("g_mmap2")
        assert entry.destination_address == kernel.symbol("fn_set_satp")
        assert entry.destination_domain == kernel.domains["vm"]

    def test_runtime_gate_still_checks_call_site(self):
        """A runtime-registered gate is as unforgeable as a boot one:
        the registered address is g_mmap2, so executing a gate with the
        same id anywhere else must fault."""
        kernel = RiscvKernel("decomposed")
        program = assemble("""
user_entry:
    li a7, 17
    li a0, %d
    li a1, %d
    li a2, %d
    ecall
    li a7, 16          # hijack misc, replay the gate id from there
    la a0, forged
    li a1, 0
    ecall
    li a7, 0
    li a0, 0
    ecall
forged:
    la t5, %d
    ld t5, 0(t5)       # the runtime gate id from kernel data
forged_site:
    hccall t5          # wrong address -> GateFault
    ret
""" % (
            kernel.symbol("g_mmap2"), kernel.symbol("fn_set_satp"),
            kernel.domains["vm"], DATA_BASE + OFF_RT_GATE,
        ), base=USER_BASE)
        kernel.run(program, max_steps=300_000)
        assert kernel.fault_count >= 1
        assert kernel.cpu.csrs[CSR_ADDRESS["satp"]] == 0

    def test_x86_runtime_registration(self):
        from repro.kernel import X86Kernel
        from repro.x86 import USER_BASE as XUB
        from repro.x86 import assemble as xasm

        kernel = X86Kernel("decomposed")
        user = xasm("""
user_entry:
    mov rsp, 0x6f0000
    mov rax, 17
    mov rdi, %d
    mov rsi, %d
    mov rdx, %d
    syscall
    mov rax, 18
    mov rdi, 0x9000
    syscall
    mov rax, 0
    mov rdi, 0
    syscall
""" % (kernel.symbol("g_mmap2"), kernel.symbol("fn_write_cr3"),
            kernel.domains["vm"]), base=XUB)
        kernel.run(user, max_steps=300_000)
        assert kernel.fault_count == 0
        assert kernel.cpu.sys.cr3 == 0x9000

    def test_x86_gate_unusable_before_registration(self):
        from repro.kernel import X86Kernel
        from repro.x86 import USER_BASE as XUB
        from repro.x86 import assemble as xasm

        kernel = X86Kernel("decomposed")
        user = xasm("""
user_entry:
    mov rsp, 0x6f0000
    mov rax, 18
    mov rdi, 0x9000
    syscall
aborted:
    mov rax, 0
    mov rdi, 0
    syscall
""", base=XUB)
        kernel.load_user(user)
        kernel.set_abort_continuation(user.symbol("aborted"))
        kernel.run(max_steps=300_000)
        assert kernel.fault_count >= 1
        assert kernel.cpu.sys.cr3 == 0

    def test_native_kernel_reports_no_gate(self):
        kernel = RiscvKernel("native")
        program = assemble("""
user_entry:
    li a7, 17
    li a0, 0
    li a1, 0
    li a2, 0
    ecall
    li a7, 18          # native mmap2 falls back to a direct call
    li a0, 0x777
    ecall
    li a7, 0
    li a0, 0
    ecall
""", base=USER_BASE)
        kernel.run(program, max_steps=300_000)
        assert kernel.cpu.csrs[CSR_ADDRESS["satp"]] == 0x777
