"""Use case 3: the PKS/wrpkrs trampoline."""

import pytest

from repro.kernel import estimate_case3, measure_two_hccall, run_pks_demo
from repro.kernel.pks import (
    MPK_TRAMPOLINE_CYCLES,
    PAGE_TABLE_SWITCH_NO_PTI,
    VMFUNC_SWITCH,
    WRPKRU_CYCLES,
)


class TestPksDemo:
    @pytest.fixture(scope="class")
    def demo(self):
        return run_pks_demo()

    def test_trampoline_writes_succeed(self, demo):
        assert demo.trampoline_writes_succeeded

    def test_outside_write_blocked(self, demo):
        assert demo.outside_write_blocked

    def test_guarded(self, demo):
        assert demo.guarded
        assert demo.pkrs_value == 0


class TestCase3Estimate:
    @pytest.fixture(scope="class")
    def estimate(self):
        return estimate_case3()

    def test_two_hccall_near_70_cycles(self, estimate):
        """Paper: two hccall ≈ 70 cycles on the x86 prototype."""
        assert estimate.two_hccall_cycles == pytest.approx(70, rel=0.15)

    def test_total_near_175(self, estimate):
        """Paper: 105 + 70 = 175 cycles for PKS + ISA-Grid."""
        assert estimate.pks_with_isagrid_cycles == pytest.approx(175, rel=0.1)

    def test_faster_than_every_alternative(self, estimate):
        assert estimate.faster_than_all_alternatives
        assert estimate.pks_with_isagrid_cycles < VMFUNC_SWITCH
        assert estimate.pks_with_isagrid_cycles < PAGE_TABLE_SWITCH_NO_PTI

    def test_quoted_constants(self, estimate):
        assert estimate.wrpkru_cycles == WRPKRU_CYCLES == 26
        assert estimate.mpk_trampoline_cycles == MPK_TRAMPOLINE_CYCLES == 105

    def test_measure_is_deterministic(self):
        assert measure_two_hccall(iterations=200) == measure_two_hccall(iterations=200)
