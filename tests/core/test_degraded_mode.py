"""Bypass-degraded operation: correctness with every cache distrusted."""

import pytest

from repro.conformance import (
    CONFORMANCE_CONFIGS,
    ConformanceWorld,
    generate_events,
    make_backend,
)
from repro.core import AccessInfo, CacheId, GateKind, InstructionPrivilegeFault


class TestDegradedChecks:
    def test_enter_flushes_and_counts(self, pcu, manager, isa_map):
        domain = manager.create_domain("kernel")
        manager.allow_instructions(domain.domain_id, ["alu"])
        gate = manager.register_gate(0x1000, 0x2000, domain.domain_id)
        pcu.execute_gate(GateKind.HCCALL, gate, 0x1000)
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        assert len(pcu.hpt_cache.inst)
        pcu.enter_degraded_mode()
        assert pcu.degraded
        assert not len(pcu.hpt_cache.inst)
        assert pcu.stats.degraded_entries == 1
        pcu.enter_degraded_mode()  # idempotent
        assert pcu.stats.degraded_entries == 1

    def test_degraded_checks_walk_memory(self, pcu, manager, isa_map):
        domain = manager.create_domain("kernel")
        manager.allow_instructions(domain.domain_id, ["alu"])
        gate = manager.register_gate(0x1000, 0x2000, domain.domain_id)
        pcu.execute_gate(GateKind.HCCALL, gate, 0x1000)
        pcu.enter_degraded_mode()
        stall = pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        assert stall > 0  # every degraded check pays the walk
        assert pcu.stats.degraded_checks == 1
        assert not len(pcu.hpt_cache.inst)  # and fills nothing
        with pytest.raises(InstructionPrivilegeFault):
            pcu.check(AccessInfo(inst_class=isa_map.inst_class("sysop")))

    def test_degraded_gate_reads_sgt_directly(self, pcu, manager):
        domain = manager.create_domain("kernel")
        gate = manager.register_gate(0x1000, 0x2000, domain.domain_id)
        pcu.enter_degraded_mode()
        target, stall = pcu.execute_gate(GateKind.HCCALL, gate, 0x1000)
        assert target == 0x2000
        assert stall > 0

    def test_exit_restores_cached_operation(self, pcu, manager, isa_map):
        domain = manager.create_domain("kernel")
        manager.allow_instructions(domain.domain_id, ["alu"])
        gate = manager.register_gate(0x1000, 0x2000, domain.domain_id)
        pcu.execute_gate(GateKind.HCCALL, gate, 0x1000)
        pcu.enter_degraded_mode()
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        pcu.exit_degraded_mode()
        assert not pcu.degraded
        walked = pcu.stats.degraded_checks
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        assert pcu.stats.degraded_checks == walked  # back on the caches


class TestDegradedOracleEquivalence:
    """The acceptance test: a degraded PCU must remain oracle-identical
    over a long fuzzed stream, with the walks observable in PcuStats."""

    @pytest.mark.parametrize("backend_name", ("riscv", "x86"))
    def test_degraded_replay_is_oracle_identical(self, backend_name):
        world = ConformanceWorld(make_backend(backend_name),
                                 CONFORMANCE_CONFIGS["draco"])
        world.pcu.enter_degraded_mode()
        for index, event in enumerate(generate_events(17, 600)):
            cached, oracle = world.apply(event)
            assert cached == oracle, "event %d (%s)" % (index, event.op)
        stats = world.pcu.stats
        assert stats.degraded_checks > 0
        assert stats.degraded_entries == 1
        # degraded means *no* cache traffic served the data path
        assert stats.draco_hits == 0

    def test_degraded_flag_survives_flush_events(self):
        world = ConformanceWorld(make_backend("riscv"),
                                 CONFORMANCE_CONFIGS["stress"])
        world.pcu.enter_degraded_mode()
        world.pcu.flush(CacheId.ALL)
        assert world.pcu.degraded
