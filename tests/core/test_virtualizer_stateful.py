"""Stateful ABA property: recycling never serves a stale tenant verdict.

Hypothesis drives random tenant lifecycles — spawns, retires, rebinds,
gate entries, context switches — against one DomainVirtualizer, and
after every step checks the core-visible property the generation guard
exists for: a check retired in a domain whose slot generation moved
since the core entered MUST raise StaleGenerationFault, and a check in
a generation-coherent domain must NEVER raise it.  That is exactly the
ABA confusion (old core, recycled slot, possibly a brand-new tenant
bound in it) shrunk to its minimal reproduction when it fails.

The machine also drives one-way seals through the tenant lifecycle and
pins their slot-scoped lifetime: while a tenant stays bound, a sealed
class MUST deny even though the manifest still grants it; once the
binding dies (retire, eviction, recycle), the next tenant in that slot
MUST NOT inherit the seal mask — a granted class checks ok again.
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from repro.core import (
    CONFIG_8E,
    AccessInfo,
    CsrDescriptor,
    DomainManager,
    DomainVirtualizer,
    GateKind,
    IsaGridIsaMap,
    PrivilegeCheckUnit,
    SlotExhausted,
    StaleGenerationFault,
    TenantManifest,
    TrustedMemory,
)
from repro.core.errors import PrivilegeFault
from repro.core.pcu import DOMAIN_0

CLASSES = ["alu", "load", "store", "csr", "sysop", "halt"]
MAX_SLOTS = 3


class VirtualizerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        isa_map = IsaGridIsaMap("testarch", CLASSES,
                                [CsrDescriptor("ctrl", 0, bitwise=True)])
        memory = TrustedMemory(base=0x100000, size=1 << 20)
        self.pcu = PrivilegeCheckUnit(isa_map, CONFIG_8E, memory)
        self.manager = DomainManager(self.pcu)
        self.virtualizer = DomainVirtualizer(self.manager,
                                             max_slots=MAX_SLOTS)
        self.alive = []
        #: generation the core latched when it last entered its domain —
        #: the independent mirror of ``pcu._entry_generation``
        self.entry_generation = 0
        #: spawn-time manifest mirror: logical -> granted class names
        self.grants = {}
        #: live seal mirror: logical -> (physical, generation, classes);
        #: valid only while that exact binding incarnation persists
        self.seals = {}

    def _pick(self, index):
        return self.alive[index % len(self.alive)]

    @rule(grants=st.sets(st.sampled_from(CLASSES), max_size=3))
    def spawn(self, grants):
        logical = self.virtualizer.spawn(
            TenantManifest(instructions=set(grants)))
        self.alive.append(logical)
        self.grants[logical] = set(grants)

    @precondition(lambda self: self.alive)
    @rule(index=st.integers(min_value=0, max_value=99))
    def retire(self, index):
        logical = self._pick(index)
        self.alive.remove(logical)
        self.virtualizer.retire(logical)
        self.grants.pop(logical, None)
        self.seals.pop(logical, None)

    @precondition(lambda self: self.alive)
    @rule(index=st.integers(min_value=0, max_value=99),
          inst=st.integers(min_value=0, max_value=5))
    def seal(self, index, inst):
        """Seal one class on a tenant; slot state when bound, no-op when
        unbound (deliberately not replayed on a later rebind)."""
        logical = self._pick(index)
        self.virtualizer.seal_privileges(logical,
                                         instructions=[CLASSES[inst]])
        physical = self.virtualizer.bindings.get(logical)
        if physical is None:
            return
        generation = self.virtualizer.generations[physical]
        entry = self.seals.get(logical)
        if entry is None or entry[0] != physical or entry[1] != generation:
            entry = (physical, generation, set())
            self.seals[logical] = entry
        entry[2].add(inst)

    def _sealed_classes(self, physical):
        """Classes sealed in the *current incarnation* of ``physical``."""
        for logical, bound in self.virtualizer.bindings.items():
            if bound != physical:
                continue
            entry = self.seals.get(logical)
            if (entry and entry[0] == physical
                    and entry[1] == self.virtualizer.generations[physical]):
                return logical, entry[2]
            return logical, set()
        return None, set()

    @precondition(lambda self: self.alive)
    @rule(index=st.integers(min_value=0, max_value=99))
    def activate(self, index):
        try:
            self.virtualizer.activate(self._pick(index))
        except SlotExhausted:
            pass  # legal backpressure, never a crash

    @precondition(lambda self: self.alive)
    @rule(index=st.integers(min_value=0, max_value=99))
    def enter(self, index):
        """Context-switch to domain-0 and HCCALL into a tenant's slot."""
        self.pcu.reset()
        self.entry_generation = 0
        try:
            physical = self.virtualizer.activate(self._pick(index))
        except SlotExhausted:
            return
        self.pcu.execute_gate(
            GateKind.HCCALL, self.virtualizer.gate_id_of(physical),
            self.virtualizer.gate_address_of(physical), None)
        self.entry_generation = self.virtualizer.generations[physical]

    @rule()
    def context_switch_out(self):
        self.pcu.reset()
        self.entry_generation = 0

    @rule(inst=st.integers(min_value=0, max_value=5))
    def check(self, inst):
        """The property: staleness and StaleGenerationFault coincide."""
        domain = self.pcu.current_domain
        if domain == DOMAIN_0:
            self.pcu.check(AccessInfo(inst))  # domain-0 checks always pass
            return
        stale = (self.virtualizer.generations.get(domain, 0)
                 != self.entry_generation)
        try:
            self.pcu.check(AccessInfo(inst))
            outcome = "ok"
        except StaleGenerationFault:
            outcome = "stale"
        except PrivilegeFault:
            outcome = "denied"
        if stale:
            assert outcome == "stale", (
                "slot generation moved under the core (domain %d) but the "
                "check returned %r — a stale/ABA verdict escaped"
                % (domain, outcome))
            return
        assert outcome != "stale", (
            "generation-coherent check in domain %d raised "
            "StaleGenerationFault" % domain)
        logical, sealed = self._sealed_classes(domain)
        if inst in sealed:
            assert outcome == "denied", (
                "class %r is sealed for tenant %s in slot %d but the check "
                "returned %r — a seal was lost" % (CLASSES[inst], logical,
                                                   domain, outcome))
        elif logical is not None and CLASSES[inst] in self.grants[logical]:
            assert outcome == "ok", (
                "tenant %s in slot %d is granted unsealed class %r but the "
                "check returned %r — the slot inherited a stale seal mask"
                % (logical, domain, CLASSES[inst], outcome))


TestVirtualizerMachine = VirtualizerMachine.TestCase
TestVirtualizerMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)
