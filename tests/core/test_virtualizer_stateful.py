"""Stateful ABA property: recycling never serves a stale tenant verdict.

Hypothesis drives random tenant lifecycles — spawns, retires, rebinds,
gate entries, context switches — against one DomainVirtualizer, and
after every step checks the core-visible property the generation guard
exists for: a check retired in a domain whose slot generation moved
since the core entered MUST raise StaleGenerationFault, and a check in
a generation-coherent domain must NEVER raise it.  That is exactly the
ABA confusion (old core, recycled slot, possibly a brand-new tenant
bound in it) shrunk to its minimal reproduction when it fails.
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from repro.core import (
    CONFIG_8E,
    AccessInfo,
    CsrDescriptor,
    DomainManager,
    DomainVirtualizer,
    GateKind,
    IsaGridIsaMap,
    PrivilegeCheckUnit,
    SlotExhausted,
    StaleGenerationFault,
    TenantManifest,
    TrustedMemory,
)
from repro.core.errors import PrivilegeFault
from repro.core.pcu import DOMAIN_0

CLASSES = ["alu", "load", "store", "csr", "sysop", "halt"]
MAX_SLOTS = 3


class VirtualizerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        isa_map = IsaGridIsaMap("testarch", CLASSES,
                                [CsrDescriptor("ctrl", 0, bitwise=True)])
        memory = TrustedMemory(base=0x100000, size=1 << 20)
        self.pcu = PrivilegeCheckUnit(isa_map, CONFIG_8E, memory)
        self.manager = DomainManager(self.pcu)
        self.virtualizer = DomainVirtualizer(self.manager,
                                             max_slots=MAX_SLOTS)
        self.alive = []
        #: generation the core latched when it last entered its domain —
        #: the independent mirror of ``pcu._entry_generation``
        self.entry_generation = 0

    def _pick(self, index):
        return self.alive[index % len(self.alive)]

    @rule(grants=st.sets(st.sampled_from(CLASSES), max_size=3))
    def spawn(self, grants):
        self.alive.append(
            self.virtualizer.spawn(TenantManifest(instructions=set(grants))))

    @precondition(lambda self: self.alive)
    @rule(index=st.integers(min_value=0, max_value=99))
    def retire(self, index):
        logical = self._pick(index)
        self.alive.remove(logical)
        self.virtualizer.retire(logical)

    @precondition(lambda self: self.alive)
    @rule(index=st.integers(min_value=0, max_value=99))
    def activate(self, index):
        try:
            self.virtualizer.activate(self._pick(index))
        except SlotExhausted:
            pass  # legal backpressure, never a crash

    @precondition(lambda self: self.alive)
    @rule(index=st.integers(min_value=0, max_value=99))
    def enter(self, index):
        """Context-switch to domain-0 and HCCALL into a tenant's slot."""
        self.pcu.reset()
        self.entry_generation = 0
        try:
            physical = self.virtualizer.activate(self._pick(index))
        except SlotExhausted:
            return
        self.pcu.execute_gate(
            GateKind.HCCALL, self.virtualizer.gate_id_of(physical),
            self.virtualizer.gate_address_of(physical), None)
        self.entry_generation = self.virtualizer.generations[physical]

    @rule()
    def context_switch_out(self):
        self.pcu.reset()
        self.entry_generation = 0

    @rule(inst=st.integers(min_value=0, max_value=5))
    def check(self, inst):
        """The property: staleness and StaleGenerationFault coincide."""
        domain = self.pcu.current_domain
        if domain == DOMAIN_0:
            self.pcu.check(AccessInfo(inst))  # domain-0 checks always pass
            return
        stale = (self.virtualizer.generations.get(domain, 0)
                 != self.entry_generation)
        try:
            self.pcu.check(AccessInfo(inst))
            outcome = "ok"
        except StaleGenerationFault:
            outcome = "stale"
        except PrivilegeFault:
            outcome = "denied"
        if stale:
            assert outcome == "stale", (
                "slot generation moved under the core (domain %d) but the "
                "check returned %r — a stale/ABA verdict escaped"
                % (domain, outcome))
        else:
            assert outcome != "stale", (
                "generation-coherent check in domain %d raised "
                "StaleGenerationFault" % domain)


TestVirtualizerMachine = VirtualizerMachine.TestCase
TestVirtualizerMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)
