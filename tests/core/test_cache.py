"""The domain privilege cache: LRU behaviour, refills, bypass register."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    CONFIG_8E,
    CONFIG_8EN,
    FullyAssociativeCache,
    HybridPrivilegeTable,
    InstPrivilegeRegister,
    PcuConfig,
    SwitchingGateTable,
    TrustedMemory,
)
from repro.core.cache import HptCacheSet, SgtCache
from repro.core.errors import GateFault
from repro.core.stats import CacheStats


class TestFullyAssociativeCache:
    def test_miss_then_hit(self):
        cache = FullyAssociativeCache(2)
        assert cache.lookup("a") is None
        cache.fill("a", 1)
        assert cache.lookup("a") == 1

    def test_lru_eviction(self):
        cache = FullyAssociativeCache(2)
        cache.fill("a", 1)
        cache.fill("b", 2)
        cache.fill("c", 3)  # evicts "a"
        assert cache.lookup("a") is None
        assert cache.lookup("b") == 2
        assert cache.lookup("c") == 3

    def test_lookup_promotes(self):
        cache = FullyAssociativeCache(2)
        cache.fill("a", 1)
        cache.fill("b", 2)
        cache.lookup("a")        # "a" becomes MRU
        cache.fill("c", 3)        # evicts "b"
        assert cache.lookup("a") == 1
        assert cache.lookup("b") is None

    def test_refill_updates_payload(self):
        cache = FullyAssociativeCache(2)
        cache.fill("a", 1)
        cache.fill("a", 9)
        assert cache.lookup("a") == 9
        assert len(cache) == 1

    def test_invalidate(self):
        cache = FullyAssociativeCache(2)
        cache.fill("a", 1)
        cache.invalidate("a")
        assert cache.lookup("a") is None
        cache.invalidate("missing")  # no-op

    def test_flush(self):
        cache = FullyAssociativeCache(4)
        cache.fill("a", 1)
        cache.fill("b", 2)
        cache.flush()
        assert len(cache) == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            FullyAssociativeCache(0)

    def test_invalidate_where_matching_only(self):
        cache = FullyAssociativeCache(4)
        cache.fill((1, 0), "a")
        cache.fill((1, 1), "b")
        cache.fill((2, 0), "c")
        assert cache.invalidate_where(lambda tag: tag[0] == 1) == 2
        assert cache.lookup((1, 0)) is None
        assert cache.lookup((1, 1)) is None
        assert cache.lookup((2, 0)) == "c"

    def test_invalidate_where_no_match(self):
        cache = FullyAssociativeCache(2)
        cache.fill("a", 1)
        assert cache.invalidate_where(lambda tag: False) == 0
        assert cache.lookup("a") == 1

    def test_invalidate_where_preserves_survivor_lru(self):
        cache = FullyAssociativeCache(2)
        cache.fill("a", 1)
        cache.fill("b", 2)
        cache.invalidate_where(lambda tag: tag == "a")
        cache.fill("c", 3)
        cache.fill("d", 4)  # evicts "b", the LRU survivor
        assert cache.lookup("b") is None
        assert cache.lookup("c") == 3 and cache.lookup("d") == 4

    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=200))
    def test_never_exceeds_capacity(self, accesses):
        cache = FullyAssociativeCache(4)
        for tag in accesses:
            if cache.lookup(tag) is None:
                cache.fill(tag, tag)
        assert len(cache) <= 4

    @given(st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=200))
    def test_matches_reference_lru(self, accesses):
        """The cache must behave exactly like a reference LRU model."""
        cache = FullyAssociativeCache(3)
        reference = []
        for tag in accesses:
            hit = cache.lookup(tag) is not None
            assert hit == (tag in reference)
            if hit:
                reference.remove(tag)
            else:
                cache.fill(tag, tag)
                if len(reference) >= 3:
                    reference.pop(0)
            reference.append(tag)


@pytest.fixture
def hpt_and_caches(isa_map):
    memory = TrustedMemory(base=0x100000, size=1 << 20)
    hpt = HybridPrivilegeTable(isa_map, memory, max_domains=16)
    caches = HptCacheSet(CONFIG_8E, hpt)
    return hpt, caches


class TestHptCacheSet:
    def test_miss_pays_refill_latency(self, hpt_and_caches):
        hpt, caches = hpt_and_caches
        stats = CacheStats()
        _, cycles = caches.inst_word(1, 0, stats)
        assert cycles == CONFIG_8E.refill_latency
        assert stats.misses == 1

    def test_hit_is_free(self, hpt_and_caches):
        hpt, caches = hpt_and_caches
        stats = CacheStats()
        caches.inst_word(1, 0, stats)
        _, cycles = caches.inst_word(1, 0, stats)
        assert cycles == 0
        assert stats.hits == 1

    def test_refill_reads_current_hpt_contents(self, hpt_and_caches):
        hpt, caches = hpt_and_caches
        hpt.allow_instruction(1, 3)
        stats = CacheStats()
        word, _ = caches.inst_word(1, 0, stats)
        assert word == 1 << 3

    def test_domain_id_in_tag(self, hpt_and_caches):
        """No flush needed on domain switch: tags carry the domain id."""
        hpt, caches = hpt_and_caches
        hpt.allow_instruction(1, 0)
        stats = CacheStats()
        word1, _ = caches.inst_word(1, 0, stats)
        word2, _ = caches.inst_word(2, 0, stats)
        assert word1 == 1 and word2 == 0
        # both entries coexist
        word1_again, cycles = caches.inst_word(1, 0, stats)
        assert cycles == 0 and word1_again == 1

    def test_reg_and_mask_caches_independent(self, hpt_and_caches, isa_map):
        hpt, caches = hpt_and_caches
        ctrl = isa_map.csr_index("ctrl")
        hpt.grant_register(1, ctrl, write=True)
        hpt.set_mask(1, ctrl, 0xFF)
        reg_stats, mask_stats = CacheStats(), CacheStats()
        caches.reg_word(1, 0, reg_stats)
        caches.mask_word(1, isa_map.mask_slot(ctrl), mask_stats)
        assert reg_stats.misses == 1 and mask_stats.misses == 1

    def test_prefetch_warms_without_stall(self, hpt_and_caches, isa_map):
        hpt, caches = hpt_and_caches
        ctrl = isa_map.csr_index("ctrl")
        reg_stats, mask_stats = CacheStats(), CacheStats()
        caches.prefetch_csr(1, ctrl, reg_stats, mask_stats)
        assert reg_stats.prefetch_fills == 1
        assert mask_stats.prefetch_fills == 1
        # subsequent demand access hits
        _, cycles = caches.reg_word(1, 0, reg_stats)
        assert cycles == 0

    def test_prefetch_all(self, hpt_and_caches, isa_map):
        hpt, caches = hpt_and_caches
        reg_stats, mask_stats = CacheStats(), CacheStats()
        caches.prefetch_all(1, reg_stats, mask_stats)
        assert mask_stats.prefetch_fills == isa_map.n_masked_csrs


class TestSgtCache:
    @pytest.fixture
    def sgt(self):
        memory = TrustedMemory(base=0x100000, size=1 << 20)
        sgt = SwitchingGateTable(memory, max_gates=32)
        sgt.register(0x1000, 0x2000, 1)
        return sgt

    def test_miss_then_hit(self, sgt):
        cache = SgtCache(CONFIG_8E, sgt)
        stats = CacheStats()
        entry, cycles = cache.entry(0, stats)
        assert cycles == CONFIG_8E.refill_latency
        entry, cycles = cache.entry(0, stats)
        assert cycles == 0
        assert entry.destination_domain == 1

    def test_no_cache_variant_always_pays(self, sgt):
        """8E.N: every gate execution reads the SGT from memory."""
        cache = SgtCache(CONFIG_8EN, sgt)
        stats = CacheStats()
        for _ in range(3):
            _, cycles = cache.entry(0, stats)
            assert cycles == CONFIG_8EN.refill_latency
        assert stats.lookups == 0  # no CAM exists to search

    def test_unregistered_gate_fault_propagates(self, sgt):
        cache = SgtCache(CONFIG_8E, sgt)
        with pytest.raises(GateFault):
            cache.entry(5, CacheStats())

    def test_invalidate_after_reregistration(self, sgt):
        cache = SgtCache(CONFIG_8E, sgt)
        stats = CacheStats()
        cache.entry(0, stats)
        sgt.register(0x3000, 0x4000, 2, gate_id=0)
        cache.invalidate(0)
        entry, _ = cache.entry(0, stats)
        assert entry.gate_address == 0x3000


class TestInstPrivilegeRegister:
    def test_unloaded_returns_none(self):
        register = InstPrivilegeRegister()
        assert register.allowed(1, 0) is None

    def test_loaded_domain_serves_checks(self):
        register = InstPrivilegeRegister()
        register.load(1, [0b101])
        assert register.allowed(1, 0) is True
        assert register.allowed(1, 1) is False
        assert register.allowed(1, 2) is True

    def test_other_domain_misses(self):
        register = InstPrivilegeRegister()
        register.load(1, [0b1])
        assert register.allowed(2, 0) is None

    def test_invalidate(self):
        register = InstPrivilegeRegister()
        register.load(1, [0b1])
        register.invalidate()
        assert register.allowed(1, 0) is None
        assert register.loaded_domain is None

    def test_multi_word_bitmaps(self):
        register = InstPrivilegeRegister()
        register.load(3, [0, 1 << 5])
        assert register.allowed(3, 64 + 5) is True
        assert register.allowed(3, 5) is False
