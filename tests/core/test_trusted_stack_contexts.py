"""Trusted-stack context switches (Section 5.2) interleaved with gate
traffic, including overflow exactly at a restore boundary."""

import pytest

from repro.core import GateKind, TrustedStackFault


@pytest.fixture
def domains(pcu, manager):
    a = manager.create_domain("alpha")
    b = manager.create_domain("beta")
    manager.allocate_trusted_stack(frames=4)
    gates = {
        "to_a": manager.register_gate(0x1000, 0x2000, a.domain_id),
        "a_to_b": manager.register_gate(0x3000, 0x4000, b.domain_id),
        "b_to_a": manager.register_gate(0x5000, 0x6000, a.domain_id),
    }
    return a, b, gates


class TestThreadSwitches:
    def test_interleaved_gates_and_switches(self, pcu, manager, domains):
        a, b, gates = domains
        stack = pcu.trusted_stack
        pcu.execute_gate(GateKind.HCCALL, gates["to_a"], 0x1000)
        pcu.execute_gate(GateKind.HCCALLS, gates["a_to_b"], 0x3000,
                         return_address=0x3004)
        assert stack.depth == 1 and pcu.current_domain == b.domain_id

        # domain-0's scheduler switches to a fresh thread context
        ctx_main = stack.save_context()
        ctx_thread = manager.create_thread_stack(frames=4)
        stack.restore_context(ctx_thread)
        assert stack.depth == 0
        stack.verify_digest()

        # gate traffic on the thread's own window
        pcu.execute_gate(GateKind.HCCALLS, gates["b_to_a"], 0x5000,
                         return_address=0x5004)
        assert stack.depth == 1
        stack.verify_digest()
        target, _ = pcu.execute_gate(GateKind.HCRETS, 0, 0x6000)
        assert target == 0x5004 and stack.depth == 0

        # back to the main context: its frame is intact
        stack.restore_context(ctx_main)
        assert stack.depth == 1
        stack.verify_digest()
        target, _ = pcu.execute_gate(GateKind.HCRETS, 0, 0x4000)
        assert target == 0x3004
        assert pcu.current_domain == a.domain_id

    def test_each_window_keeps_its_own_digest(self, pcu, manager, domains):
        a, b, gates = domains
        stack = pcu.trusted_stack
        pcu.execute_gate(GateKind.HCCALL, gates["to_a"], 0x1000)
        pcu.execute_gate(GateKind.HCCALLS, gates["a_to_b"], 0x3000,
                         return_address=0x3004)
        ctx_main = stack.save_context()
        ctx_thread = manager.create_thread_stack(frames=4)
        # corrupt the *main* window's live frame while parked
        pcu.trusted_memory.store_word(ctx_main[1], 0xBAD)
        stack.restore_context(ctx_thread)
        stack.verify_digest()  # thread window unaffected
        stack.restore_context(ctx_main)
        from repro.core import IntegrityFault
        with pytest.raises(IntegrityFault):
            stack.verify_digest()

    def test_entry_seeded_thread_returns_into_entry(self, pcu, manager, domains):
        a, _b, gates = domains
        stack = pcu.trusted_stack
        pcu.execute_gate(GateKind.HCCALL, gates["to_a"], 0x1000)
        ctx_thread = manager.create_thread_stack(
            frames=4, entry_address=0x7000, entry_domain=a.domain_id)
        stack.restore_context(ctx_thread)
        assert stack.depth == 1
        stack.verify_digest()  # the seed frame was adopted via reseed
        target, _ = pcu.execute_gate(GateKind.HCRETS, 0, 0x2000)
        assert target == 0x7000
        assert pcu.current_domain == a.domain_id


class TestOverflowAtRestoreBoundary:
    def test_overflow_on_restored_full_window(self, pcu, manager, domains):
        a, b, gates = domains
        stack = pcu.trusted_stack
        pcu.execute_gate(GateKind.HCCALL, gates["to_a"], 0x1000)
        ctx_main = stack.save_context()
        ctx_thread = manager.create_thread_stack(frames=2)
        stack.restore_context(ctx_thread)
        # fill the tiny thread window exactly to its limit
        pcu.execute_gate(GateKind.HCCALLS, gates["a_to_b"], 0x3000,
                         return_address=0x3004)
        pcu.execute_gate(GateKind.HCCALLS, gates["b_to_a"], 0x5000,
                         return_address=0x5004)
        assert stack.depth == 2
        # the very next extended call overflows at the boundary...
        with pytest.raises(TrustedStackFault):
            pcu.execute_gate(GateKind.HCCALLS, gates["a_to_b"], 0x3000,
                             return_address=0x3008)
        # ...without corrupting the window: depth and digest intact
        assert stack.depth == 2
        stack.verify_digest()
        # pops unwind cleanly, then underflow faults at the base
        pcu.execute_gate(GateKind.HCRETS, 0, 0x6000)
        pcu.execute_gate(GateKind.HCRETS, 0, 0x4000)
        with pytest.raises(TrustedStackFault):
            pcu.execute_gate(GateKind.HCRETS, 0, 0x2000)
        # switching back to the main context stays coherent
        stack.restore_context(ctx_main)
        assert stack.depth == 0
        stack.verify_digest()

    def test_failed_push_leaves_parked_context_intact(self, pcu, manager,
                                                      domains):
        a, b, gates = domains
        stack = pcu.trusted_stack
        pcu.execute_gate(GateKind.HCCALL, gates["to_a"], 0x1000)
        pcu.execute_gate(GateKind.HCCALLS, gates["a_to_b"], 0x3000,
                         return_address=0x3004)
        ctx_main = stack.save_context()
        ctx_thread = manager.create_thread_stack(frames=1)
        stack.restore_context(ctx_thread)
        pcu.execute_gate(GateKind.HCCALLS, gates["b_to_a"], 0x5000,
                         return_address=0x5004)
        with pytest.raises(TrustedStackFault):
            pcu.execute_gate(GateKind.HCCALLS, gates["a_to_b"], 0x3000,
                             return_address=0x3008)
        stack.restore_context(ctx_main)
        assert stack.depth == 1
        stack.verify_digest()
        target, _ = pcu.execute_gate(GateKind.HCRETS, 0, 0x4000)
        assert target == 0x3004
