"""Domain-configuration manifests: export, apply, JSON round-trips."""

import pytest

from repro.core import (
    ConfigurationError,
    DomainManager,
    PrivilegeCheckUnit,
    CONFIG_8E,
    TrustedMemory,
    apply_manifest,
    export_manifest,
    manifest_dumps,
    manifest_loads,
)


def fresh_manager(isa_map):
    pcu = PrivilegeCheckUnit(isa_map, CONFIG_8E, TrustedMemory(0x100000, 1 << 20))
    return DomainManager(pcu)


@pytest.fixture
def configured(manager):
    vm = manager.create_domain("vm")
    manager.allow_instructions(vm.domain_id, ["alu", "csr"])
    manager.grant_register(vm.domain_id, "vbase", read=True, write=True)
    manager.grant_register_bits(vm.domain_id, "ctrl", 0b1100)
    app = manager.create_domain("app")
    manager.allow_instructions(app.domain_id, ["alu", "load", "store"])
    manager.register_gate(0x1000, 0x2000, vm.domain_id)
    manager.register_gate(0x3000, 0x4000, app.domain_id)
    return manager


class TestExport:
    def test_captures_domains_and_gates(self, configured):
        manifest = export_manifest(configured)
        names = [d["name"] for d in manifest["domains"]]
        assert names == ["vm", "app"]
        assert len(manifest["gates"]) == 2
        assert manifest["arch"] == "testarch"

    def test_bit_grants_exported_as_hex(self, configured):
        manifest = export_manifest(configured)
        vm = manifest["domains"][0]
        assert vm["register_bits"] == [{"csr": "ctrl", "bits": "0xC"}]

    def test_domain0_not_exported(self, configured):
        manifest = export_manifest(configured)
        assert all(d["name"] != "domain-0" for d in manifest["domains"])


class TestRoundTrip:
    def test_apply_reproduces_grants(self, configured, isa_map):
        manifest = export_manifest(configured)
        target = fresh_manager(isa_map)
        ids = apply_manifest(target, manifest)
        assert set(ids) == {"domain-0", "vm", "app"}
        vm = target.domains[ids["vm"]]
        assert vm.instructions == {"alu", "csr"}
        assert vm.readable_csrs == {"vbase"}
        assert vm.bit_grants == {"ctrl": 0b1100}

    def test_apply_reproduces_hpt_state(self, configured, isa_map):
        manifest = export_manifest(configured)
        target = fresh_manager(isa_map)
        ids = apply_manifest(target, manifest)
        source_word = configured.pcu.hpt.read_reg_word(1, 0)
        target_word = target.pcu.hpt.read_reg_word(ids["vm"], 0)
        assert source_word == target_word

    def test_apply_reproduces_gates(self, configured, isa_map):
        manifest = export_manifest(configured)
        target = fresh_manager(isa_map)
        apply_manifest(target, manifest)
        entry = target.pcu.sgt.read_entry(0)
        assert entry.gate_address == 0x1000
        assert entry.destination_address == 0x2000

    def test_json_round_trip(self, configured, isa_map):
        text = manifest_dumps(configured)
        target = fresh_manager(isa_map)
        manifest_loads(target, text)
        assert export_manifest(target) == export_manifest(configured)


class TestSymbolicAddresses:
    def test_symbols_resolved(self, isa_map):
        target = fresh_manager(isa_map)
        manifest = {
            "domains": [{"name": "vm", "instructions": ["alu"]}],
            "gates": [{"gate": "g0", "destination": "fn", "domain": "vm"}],
        }
        apply_manifest(target, manifest, symbols={"g0": 0x1111, "fn": 0x2222})
        entry = target.pcu.sgt.read_entry(0)
        assert (entry.gate_address, entry.destination_address) == (0x1111, 0x2222)

    def test_hex_string_addresses(self, isa_map):
        target = fresh_manager(isa_map)
        manifest = {
            "domains": [{"name": "vm", "instructions": ["alu"]}],
            "gates": [{"gate": "0x1234", "destination": "0x5678", "domain": "vm"}],
        }
        apply_manifest(target, manifest)
        assert target.pcu.sgt.read_entry(0).gate_address == 0x1234

    def test_unknown_symbol_rejected(self, isa_map):
        target = fresh_manager(isa_map)
        manifest = {
            "domains": [{"name": "vm", "instructions": ["alu"]}],
            "gates": [{"gate": "missing", "destination": 0, "domain": "vm"}],
        }
        with pytest.raises(ConfigurationError):
            apply_manifest(target, manifest)


class TestValidation:
    def test_wrong_arch_rejected(self, isa_map):
        target = fresh_manager(isa_map)
        with pytest.raises(ConfigurationError):
            apply_manifest(target, {"arch": "sparc", "domains": []})

    def test_gate_to_undeclared_domain_rejected(self, isa_map):
        target = fresh_manager(isa_map)
        manifest = {"domains": [], "gates": [
            {"gate": 0, "destination": 0, "domain": "ghost"},
        ]}
        with pytest.raises(ConfigurationError):
            apply_manifest(target, manifest)

    def test_real_kernel_manifest_round_trips(self):
        """The shipped x86 decomposition exports and re-applies."""
        from repro.kernel import X86Kernel
        from repro.x86 import X86_ISA_MAP

        kernel = X86Kernel("decomposed")
        manifest = export_manifest(kernel.system.manager)
        target = fresh_manager(X86_ISA_MAP)
        ids = apply_manifest(target, manifest)
        assert "debug" in ids and "monitor" in ids
        assert export_manifest(target) == manifest
