"""Unit and property tests for the HPT bitmap structures."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bitmap import (
    BitMaskArray,
    InstructionBitmap,
    RegisterBitmap,
    words_for_bits,
)


class TestWordsForBits:
    def test_exact_word(self):
        assert words_for_bits(64) == 1

    def test_one_over(self):
        assert words_for_bits(65) == 2

    def test_small(self):
        assert words_for_bits(1) == 1

    @given(st.integers(min_value=1, max_value=10_000))
    def test_covers_all_bits(self, nbits):
        words = words_for_bits(nbits)
        assert words * 64 >= nbits
        assert (words - 1) * 64 < nbits


class TestInstructionBitmap:
    def test_starts_all_denied(self):
        bitmap = InstructionBitmap(20)
        assert not any(bitmap.allowed(i) for i in range(20))

    def test_fill_starts_all_allowed(self):
        bitmap = InstructionBitmap(20, fill=True)
        assert all(bitmap.allowed(i) for i in range(20))

    def test_fill_clears_tail_bits(self):
        bitmap = InstructionBitmap(10, fill=True)
        assert bitmap.word(0) == (1 << 10) - 1

    def test_allow_and_deny(self):
        bitmap = InstructionBitmap(128)
        bitmap.allow(100)
        assert bitmap.allowed(100)
        bitmap.deny(100)
        assert not bitmap.allowed(100)

    def test_allow_many(self):
        bitmap = InstructionBitmap(64)
        bitmap.allow_many([1, 5, 63])
        assert bitmap.allowed(1) and bitmap.allowed(5) and bitmap.allowed(63)
        assert not bitmap.allowed(0)

    def test_out_of_range_raises(self):
        bitmap = InstructionBitmap(10)
        with pytest.raises(IndexError):
            bitmap.allow(10)
        with pytest.raises(IndexError):
            bitmap.allowed(-1)

    def test_zero_classes_rejected(self):
        with pytest.raises(ValueError):
            InstructionBitmap(0)

    def test_word_serialization_single_bit(self):
        bitmap = InstructionBitmap(128)
        bitmap.allow(70)
        assert bitmap.word(0) == 0
        assert bitmap.word(1) == 1 << 6

    def test_set_word_roundtrip(self):
        bitmap = InstructionBitmap(128)
        bitmap.set_word(1, 0xDEADBEEF)
        assert bitmap.word(1) == 0xDEADBEEF

    def test_set_word_masks_tail(self):
        bitmap = InstructionBitmap(66)
        bitmap.set_word(1, 0xFF)
        assert bitmap.word(1) == 0b11  # only 2 tail bits exist

    @given(st.sets(st.integers(min_value=0, max_value=199), max_size=50))
    def test_allowed_matches_grant_set(self, grants):
        bitmap = InstructionBitmap(200)
        bitmap.allow_many(grants)
        for i in range(200):
            assert bitmap.allowed(i) == (i in grants)


class TestRegisterBitmap:
    def test_starts_denied(self):
        bitmap = RegisterBitmap(10)
        assert not bitmap.can_read(3)
        assert not bitmap.can_write(3)

    def test_read_and_write_independent(self):
        bitmap = RegisterBitmap(10)
        bitmap.grant_read(3)
        assert bitmap.can_read(3) and not bitmap.can_write(3)
        bitmap.grant_write(4)
        assert bitmap.can_write(4) and not bitmap.can_read(4)

    def test_grant_both(self):
        bitmap = RegisterBitmap(10)
        bitmap.grant(2, read=True, write=True)
        assert bitmap.can_read(2) and bitmap.can_write(2)

    def test_revoke(self):
        bitmap = RegisterBitmap(10)
        bitmap.grant(2, read=True, write=True)
        bitmap.revoke_write(2)
        assert bitmap.can_read(2) and not bitmap.can_write(2)
        bitmap.revoke_read(2)
        assert not bitmap.can_read(2)

    def test_interleaved_layout(self):
        """CSR i occupies bits 2i (read) and 2i+1 (write)."""
        bitmap = RegisterBitmap(40)
        bitmap.grant_read(0)
        bitmap.grant_write(1)
        assert bitmap.word(0) == 0b1001

    def test_second_word(self):
        bitmap = RegisterBitmap(40)
        bitmap.grant_write(33)
        assert bitmap.word(1) == 1 << ((2 * 33 + 1) - 64)

    def test_fill(self):
        bitmap = RegisterBitmap(33, fill=True)
        assert bitmap.can_read(32) and bitmap.can_write(32)
        # tail cleared beyond 2*33 bits
        assert bitmap.word(1) >> (2 * 33 - 64) == 0

    def test_out_of_range(self):
        bitmap = RegisterBitmap(4)
        with pytest.raises(IndexError):
            bitmap.can_read(4)

    @given(
        st.sets(st.integers(min_value=0, max_value=99), max_size=30),
        st.sets(st.integers(min_value=0, max_value=99), max_size=30),
    )
    def test_reads_writes_never_interfere(self, reads, writes):
        bitmap = RegisterBitmap(100)
        for csr in reads:
            bitmap.grant_read(csr)
        for csr in writes:
            bitmap.grant_write(csr)
        for csr in range(100):
            assert bitmap.can_read(csr) == (csr in reads)
            assert bitmap.can_write(csr) == (csr in writes)


class TestBitMaskArray:
    def test_default_masks_deny_all(self):
        masks = BitMaskArray(4)
        assert masks.get_mask(0) == 0
        assert not masks.write_permitted(0, old=0, new=1)

    def test_fill_allows_all(self):
        masks = BitMaskArray(2, fill=True)
        assert masks.write_permitted(0, old=0, new=0xFFFFFFFFFFFFFFFF)

    def test_write_equation(self):
        """(old ^ new) & ~mask == 0 (the paper's Section 4.1 equation)."""
        masks = BitMaskArray(1)
        masks.set_mask(0, 0b1010)
        assert masks.write_permitted(0, old=0b0000, new=0b1010)
        assert masks.write_permitted(0, old=0b1010, new=0b0000)
        assert not masks.write_permitted(0, old=0b0000, new=0b0100)
        # unchanged protected bits are fine even when set
        assert masks.write_permitted(0, old=0b0100, new=0b1110)

    def test_identity_write_always_permitted(self):
        masks = BitMaskArray(1)
        assert masks.write_permitted(0, old=0x1234, new=0x1234)

    def test_allow_and_deny_bits(self):
        masks = BitMaskArray(1)
        masks.allow_bits(0, 0b11)
        assert masks.get_mask(0) == 0b11
        masks.deny_bits(0, 0b01)
        assert masks.get_mask(0) == 0b10

    def test_width_truncation(self):
        masks = BitMaskArray(1, width=8)
        masks.set_mask(0, 0xFFFF)
        assert masks.get_mask(0) == 0xFF

    def test_bad_width(self):
        with pytest.raises(ValueError):
            BitMaskArray(1, width=65)

    def test_slot_out_of_range(self):
        masks = BitMaskArray(2)
        with pytest.raises(IndexError):
            masks.get_mask(2)

    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.integers(min_value=0, max_value=(1 << 64) - 1),
    )
    def test_equation_matches_definition(self, mask, old, new):
        masks = BitMaskArray(1)
        masks.set_mask(0, mask)
        expected = ((old ^ new) & ~mask & (1 << 64) - 1) == 0
        assert masks.write_permitted(0, old, new) == expected

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_masked_writes_always_permitted(self, mask, flips):
        """Flipping only mask-exposed bits is always legal."""
        masks = BitMaskArray(1)
        masks.set_mask(0, mask)
        old = 0x5555555555555555
        new = old ^ (flips & mask)
        assert masks.write_permitted(0, old, new)
