"""Compiled verdict plans: coherence and fast-vs-slow bit-identity.

Two halves.  The unit tests pin the §3.14 coherence contract: every
invalidation entry point (``invalidate_privileges`` wide and narrow,
``pflh`` flushes, degraded mode, domain switches) must decompile the
verdict plan — ``verdict_plan()`` returning ``None`` — or leave it
freshly reloaded, never stale.  The hypothesis state machine then
drives a fast-path PCU and a ``fast_path=False`` PCU through identical
operation sequences and requires identical verdicts, faults, stall
cycles and full ``PcuStats`` after every step.
"""

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import (
    AccessInfo,
    CacheId,
    CsrDescriptor,
    DomainManager,
    GateKind,
    IsaGridIsaMap,
    PcuConfig,
    PrivilegeCheckUnit,
    TrustedMemory,
)
from repro.core.errors import PrivilegeFault
from repro.core.pcu import DOMAIN_0

CLASSES = ["alu", "load", "store", "csr", "sysop", "halt"]
CSRS = [
    CsrDescriptor("reserved", 0),
    CsrDescriptor("ctrl", 1, bitwise=True),
    CsrDescriptor("vbase", 2),
    CsrDescriptor("scratch", 3),
    CsrDescriptor("status", 4, bitwise=True),
    CsrDescriptor("counter", 5),
]


def build_pcu(**config_fields):
    isa_map = IsaGridIsaMap(
        "testarch",
        CLASSES,
        [CsrDescriptor(d.name, d.index, d.width, d.bitwise) for d in CSRS],
    )
    config = PcuConfig(name="fast-path-test", **config_fields)
    pcu = PrivilegeCheckUnit(isa_map, config, TrustedMemory(0x100000, 1 << 20))
    return isa_map, pcu, DomainManager(pcu)


def warm(isa_map, pcu, manager, *, classes=("alu", "csr"), at=0x1000):
    """Create a domain, enter it, and compile a verdict plan."""
    domain = manager.create_domain("kernel")
    manager.allow_instructions(domain.domain_id, list(classes))
    gate = manager.register_gate(at, at + 0x1000, domain.domain_id)
    pcu.execute_gate(GateKind.HCCALL, gate, at)
    pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
    assert pcu.verdict_plan() is not None
    return domain


class TestVerdictPlanCoherence:
    def test_plan_compiles_on_warm_check(self):
        isa_map, pcu, manager = build_pcu()
        domain = warm(isa_map, pcu, manager)
        plan_domain, words = pcu.verdict_plan()
        assert plan_domain == domain.domain_id
        assert any(words)

    def test_wide_invalidate_drops_plan(self):
        isa_map, pcu, manager = build_pcu()
        warm(isa_map, pcu, manager)
        pcu.invalidate_privileges()
        assert pcu.verdict_plan() is None

    def test_domain_scoped_invalidate_drops_plan(self):
        isa_map, pcu, manager = build_pcu()
        domain = warm(isa_map, pcu, manager)
        pcu.invalidate_privileges(domain=domain.domain_id)
        assert pcu.verdict_plan() is None

    def test_other_domain_invalidate_keeps_plan(self):
        isa_map, pcu, manager = build_pcu()
        domain = warm(isa_map, pcu, manager)
        pcu.invalidate_privileges(domain=domain.domain_id + 1)
        plan = pcu.verdict_plan()
        assert plan is not None and plan[0] == domain.domain_id

    def test_csr_narrow_reg_sweep_keeps_plan_but_refetches(self):
        # A reg-only narrow sweep must not decompile the instruction
        # verdicts — the fast path fetches register words through the
        # live cache every check, so dropping the cached word suffices.
        isa_map, pcu, manager = build_pcu()
        domain = warm(isa_map, pcu, manager)
        manager.grant_register(domain.domain_id, "vbase", read=True)
        csr = isa_map.csr_index("vbase")
        access = AccessInfo(
            inst_class=isa_map.inst_class("csr"), csr=csr, csr_read=True
        )
        pcu.check(access)  # fill the reg-bitmap cache
        misses_before = pcu.stats.reg_cache.misses
        pcu.invalidate_privileges(domain=domain.domain_id, csr=csr, inst=False)
        assert pcu.verdict_plan() is not None
        pcu.check(access)
        assert pcu.stats.reg_cache.misses == misses_before + 1

    def test_flush_all_drops_plan(self):
        isa_map, pcu, manager = build_pcu()
        warm(isa_map, pcu, manager)
        pcu.flush(CacheId.ALL)
        assert pcu.verdict_plan() is None

    def test_flush_inst_bitmap_drops_plan(self):
        isa_map, pcu, manager = build_pcu()
        warm(isa_map, pcu, manager)
        pcu.flush(CacheId.INST_BITMAP)
        assert pcu.verdict_plan() is None

    def test_flush_reg_bitmap_keeps_plan(self):
        # Register words are never baked into the plan, so a reg-bitmap
        # flush has nothing to decompile.
        isa_map, pcu, manager = build_pcu()
        domain = warm(isa_map, pcu, manager)
        pcu.flush(CacheId.REG_BITMAP)
        plan = pcu.verdict_plan()
        assert plan is not None and plan[0] == domain.domain_id

    def test_degraded_mode_drops_plan_until_exit(self):
        isa_map, pcu, manager = build_pcu()
        warm(isa_map, pcu, manager)
        pcu.enter_degraded_mode()
        assert pcu.verdict_plan() is None
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        assert pcu.verdict_plan() is None  # degraded checks never compile
        pcu.exit_degraded_mode()
        assert pcu.verdict_plan() is None  # nothing cached yet
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        assert pcu.verdict_plan() is not None

    def test_domain_switch_recompiles_for_new_domain(self):
        isa_map, pcu, manager = build_pcu()
        d1 = warm(isa_map, pcu, manager)
        d2 = manager.create_domain("service")
        manager.allow_instructions(d2.domain_id, ["alu"])
        gate = manager.register_gate(0x5000, 0x6000, d2.domain_id)
        pcu.execute_gate(GateKind.HCCALL, gate, 0x5000)
        assert pcu.verdict_plan() is None  # switch invalidated the bypass
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        plan = pcu.verdict_plan()
        assert plan is not None and plan[0] == d2.domain_id != d1.domain_id

    def test_slow_path_config_never_compiles(self):
        isa_map, pcu, manager = build_pcu(fast_path=False)
        domain = manager.create_domain("kernel")
        manager.allow_instructions(domain.domain_id, ["alu"])
        gate = manager.register_gate(0x1000, 0x2000, domain.domain_id)
        pcu.execute_gate(GateKind.HCCALL, gate, 0x1000)
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        assert pcu.verdict_plan() is None

    def test_draco_config_never_compiles(self):
        # The Draco cache keys on value tuples the plan cannot express,
        # so a Draco-equipped PCU stays on the slow path entirely.
        isa_map, pcu, manager = build_pcu(draco_entries=8)
        domain = manager.create_domain("kernel")
        manager.allow_instructions(domain.domain_id, ["alu"])
        gate = manager.register_gate(0x1000, 0x2000, domain.domain_id)
        pcu.execute_gate(GateKind.HCCALL, gate, 0x1000)
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        assert pcu.verdict_plan() is None

    def test_bypass_disabled_never_compiles(self):
        isa_map, pcu, manager = build_pcu(bypass_enabled=False)
        domain = manager.create_domain("kernel")
        manager.allow_instructions(domain.domain_id, ["alu"])
        gate = manager.register_gate(0x1000, 0x2000, domain.domain_id)
        pcu.execute_gate(GateKind.HCCALL, gate, 0x1000)
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        assert pcu.verdict_plan() is None


# ----------------------------------------------------------------------
# Hypothesis lockstep: fast-path PCU vs slow-path PCU, same operations.
# ----------------------------------------------------------------------
CLASS_INDEX = st.integers(min_value=0, max_value=len(CLASSES) - 1)
CSR_INDEX = st.integers(min_value=0, max_value=len(CSRS) - 1)
VALUE = st.integers(min_value=0, max_value=(1 << 64) - 1)
CACHE_IDS = st.sampled_from(list(CacheId))


class FastSlowLockstep(RuleBasedStateMachine):
    """Mirror every operation onto both PCUs; any divergence in verdict,
    fault type, stall cycles or statistics is a coherence bug in the
    compiled plan."""

    def __init__(self):
        super().__init__()
        self.isa_map, self.fast, self.fast_manager = build_pcu()
        _, self.slow, self.slow_manager = build_pcu(fast_path=False)
        assert self.fast._fast_capable and not self.slow._fast_capable
        self.domains = []
        self.gates = {}
        self.next_gate_pc = 0x1000

    def check_both(self, **fields):
        outcomes = []
        for pcu in (self.fast, self.slow):
            try:
                outcomes.append(("ok", pcu.check(AccessInfo(**fields))))
            except PrivilegeFault as fault:
                outcomes.append(("fault", type(fault).__name__))
        assert outcomes[0] == outcomes[1], (
            "fast/slow diverged on %r: %r" % (fields, outcomes)
        )

    # -- configuration plane -------------------------------------------
    @rule()
    def create_domain(self):
        if len(self.domains) >= 4:
            return
        name = "dom%d" % len(self.domains)
        fast_domain = self.fast_manager.create_domain(name)
        slow_domain = self.slow_manager.create_domain(name)
        assert fast_domain.domain_id == slow_domain.domain_id
        domain_id = fast_domain.domain_id
        at = self.next_gate_pc
        self.next_gate_pc += 0x100
        self.gates[domain_id] = (
            self.fast_manager.register_gate(at, at + 8, domain_id),
            self.slow_manager.register_gate(at, at + 8, domain_id),
            at,
        )
        self.domains.append(domain_id)

    @rule(pick=st.randoms(use_true_random=False),
          classes=st.sets(CLASS_INDEX, min_size=1, max_size=4))
    def allow_instructions(self, pick, classes):
        if not self.domains:
            return
        domain_id = pick.choice(self.domains)
        names = [CLASSES[index] for index in sorted(classes)]
        self.fast_manager.allow_instructions(domain_id, names)
        self.slow_manager.allow_instructions(domain_id, names)

    @rule(pick=st.randoms(use_true_random=False), csr=CSR_INDEX,
          read=st.booleans(), write=st.booleans())
    def grant_register(self, pick, csr, read, write):
        if not self.domains or not (read or write):
            return
        domain_id = pick.choice(self.domains)
        name = CSRS[csr].name
        self.fast_manager.grant_register(domain_id, name, read=read, write=write)
        self.slow_manager.grant_register(domain_id, name, read=read, write=write)

    @rule(pick=st.randoms(use_true_random=False), mask=VALUE)
    def grant_register_bits(self, pick, mask):
        if not self.domains:
            return
        domain_id = pick.choice(self.domains)
        name = pick.choice(["ctrl", "status"])
        self.fast_manager.grant_register_bits(domain_id, name, mask)
        self.slow_manager.grant_register_bits(domain_id, name, mask)

    # -- control plane -------------------------------------------------
    @rule(pick=st.randoms(use_true_random=False))
    def enter_domain(self, pick):
        if not self.domains:
            return
        domain_id = pick.choice(self.domains)
        fast_gate, slow_gate, at = self.gates[domain_id]
        fast_out = self.fast.execute_gate(GateKind.HCCALL, fast_gate, at)
        slow_out = self.slow.execute_gate(GateKind.HCCALL, slow_gate, at)
        assert fast_out == slow_out

    @rule(cache_id=CACHE_IDS)
    def flush(self, cache_id):
        self.fast.flush(cache_id)
        self.slow.flush(cache_id)

    @rule(pick=st.randoms(use_true_random=False), wide=st.booleans(),
          csr=CSR_INDEX)
    def invalidate(self, pick, wide, csr):
        if wide or not self.domains:
            self.fast.invalidate_privileges()
            self.slow.invalidate_privileges()
        else:
            domain_id = pick.choice(self.domains)
            self.fast.invalidate_privileges(domain=domain_id, csr=csr)
            self.slow.invalidate_privileges(domain=domain_id, csr=csr)

    @rule(enter=st.booleans())
    def degraded_mode(self, enter):
        if enter:
            self.fast.enter_degraded_mode()
            self.slow.enter_degraded_mode()
        else:
            self.fast.exit_degraded_mode()
            self.slow.exit_degraded_mode()

    # -- data plane ----------------------------------------------------
    @rule(inst=CLASS_INDEX)
    def check_instruction(self, inst):
        self.check_both(inst_class=inst, address=0x4000 + inst)

    @rule(inst=CLASS_INDEX, csr=CSR_INDEX, write=st.booleans(),
          value=VALUE, old=VALUE)
    def check_csr(self, inst, csr, write, value, old):
        fields = {"inst_class": inst, "address": 0x4000, "csr": csr}
        if write:
            fields.update(csr_write=True, write_value=value, old_value=old)
        else:
            fields.update(csr_read=True)
        self.check_both(**fields)

    # -- invariants ----------------------------------------------------
    @invariant()
    def stats_identical(self):
        assert self.fast.stats == self.slow.stats

    @invariant()
    def registers_identical(self):
        assert self.fast.registers.domain == self.slow.registers.domain
        assert self.fast.registers.pdomain == self.slow.registers.pdomain

    @invariant()
    def plan_coherent(self):
        plan = self.fast.verdict_plan()
        if plan is not None:
            assert plan[0] == self.fast.registers.domain != DOMAIN_0
        assert self.slow.verdict_plan() is None


FastSlowLockstep.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestFastSlowLockstep = FastSlowLockstep.TestCase
