"""PCU configurations and statistics counters."""

import pytest

from repro.core import (
    ALL_CONFIGS,
    CONFIG_16E,
    CONFIG_8E,
    CONFIG_8EN,
    CacheStats,
    ConfigurationError,
    PcuConfig,
    PcuStats,
)


class TestConfigs:
    def test_paper_configurations(self):
        assert CONFIG_16E.hpt_cache_entries == 16
        assert CONFIG_16E.sgt_cache_entries == 16
        assert CONFIG_8E.hpt_cache_entries == 8
        assert CONFIG_8EN.sgt_cache_entries == 0

    def test_has_sgt_cache(self):
        assert CONFIG_8E.has_sgt_cache
        assert not CONFIG_8EN.has_sgt_cache

    def test_all_configs_distinct_names(self):
        names = {c.name for c in ALL_CONFIGS}
        assert names == {"16E.", "8E.", "8E.N"}

    def test_with_refill_latency(self):
        derived = CONFIG_8E.with_refill_latency(204)
        assert derived.refill_latency == 204
        assert derived.hpt_cache_entries == CONFIG_8E.hpt_cache_entries
        assert CONFIG_8E.refill_latency != 204 or True  # original untouched

    def test_invalid_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            PcuConfig(hpt_cache_entries=0)
        with pytest.raises(ConfigurationError):
            PcuConfig(sgt_cache_entries=-1)

    def test_invalid_groupings_rejected(self):
        with pytest.raises(ConfigurationError):
            PcuConfig(inst_group_bits=48)
        with pytest.raises(ConfigurationError):
            PcuConfig(reg_group_csrs=64)


class TestCacheStats:
    def test_hit_rate_empty_is_one(self):
        assert CacheStats().hit_rate == 1.0

    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_rate == 0.75
        assert stats.accesses == 4

    def test_reset(self):
        stats = CacheStats(hits=3, misses=1, lookups=4)
        stats.reset()
        assert stats.hits == stats.misses == stats.lookups == 0

    def test_merge(self):
        a = CacheStats(hits=1, misses=2, lookups=3, fills=1)
        b = CacheStats(hits=10, misses=20, lookups=30, prefetch_fills=5)
        a.merge(b)
        assert (a.hits, a.misses, a.lookups) == (11, 22, 33)
        assert a.prefetch_fills == 5


class TestPcuStats:
    def test_total_cam_lookups(self):
        stats = PcuStats()
        stats.inst_cache.lookups = 5
        stats.sgt_cache.lookups = 3
        assert stats.total_cam_lookups == 8

    def test_record_fault(self):
        stats = PcuStats()
        stats.record_fault(ValueError("x"))
        stats.record_fault(ValueError("y"))
        assert stats.faults == {"ValueError": 2}
        assert stats.total_faults == 2

    def test_hit_rates_keys(self):
        assert set(PcuStats().hit_rates()) == {"inst", "reg", "mask", "sgt"}

    def test_reset_clears_everything(self):
        stats = PcuStats()
        stats.inst_checks = 7
        stats.domain_switches = 2
        stats.inst_cache.hits = 5
        stats.record_fault(ValueError("x"))
        stats.reset()
        assert stats.inst_checks == 0
        assert stats.domain_switches == 0
        assert stats.inst_cache.hits == 0
        assert not stats.faults

    def test_as_dict_is_serializable(self):
        import json

        stats = PcuStats()
        stats.inst_checks = 1
        json.dumps(stats.as_dict())
