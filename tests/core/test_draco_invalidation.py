"""Per-CSR coherence: reconfigures only drop the cache state they
falsify — warm Draco tuples and mask slots for other CSRs survive."""

import pytest

from repro.core import (
    AccessInfo,
    DomainManager,
    GateKind,
    PcuConfig,
    PrivilegeCheckUnit,
    RegisterReadFault,
)


@pytest.fixture
def pcu(isa_map, trusted_memory):
    return PrivilegeCheckUnit(
        isa_map,
        PcuConfig(name="draco-test", draco_entries=8),
        trusted_memory,
    )


@pytest.fixture
def manager(pcu):
    return DomainManager(pcu)


@pytest.fixture
def domain(pcu, manager):
    descriptor = manager.create_domain("kernel")
    manager.allow_instructions(descriptor.domain_id, ["csr"])
    manager.grant_register(descriptor.domain_id, "vbase", read=True)
    manager.grant_register(descriptor.domain_id, "counter", read=True)
    gate = manager.register_gate(0x1000, 0x2000, descriptor.domain_id)
    pcu.execute_gate(GateKind.HCCALL, gate, 0x1000)
    return descriptor


def read_access(isa_map, csr_name):
    return AccessInfo(inst_class=isa_map.inst_class("csr"),
                      csr=isa_map.csr_index(csr_name), csr_read=True)


def prove(pcu, isa_map, csr_name):
    """Run the same check twice: fill the Draco tuple, then hit it."""
    pcu.check(read_access(isa_map, csr_name))
    hits = pcu.stats.draco_hits
    assert pcu.check(read_access(isa_map, csr_name)) == 0
    assert pcu.stats.draco_hits == hits + 1


class TestDracoPerCsrInvalidation:
    def test_unrelated_csr_grant_preserves_warm_tuples(
            self, pcu, manager, isa_map, domain):
        prove(pcu, isa_map, "vbase")
        manager.grant_register(domain.domain_id, "scratch", read=True)
        hits = pcu.stats.draco_hits
        assert pcu.check(read_access(isa_map, "vbase")) == 0  # still proven
        assert pcu.stats.draco_hits == hits + 1

    def test_unrelated_csr_revoke_preserves_warm_tuples(
            self, pcu, manager, isa_map, domain):
        prove(pcu, isa_map, "vbase")
        manager.revoke_register(domain.domain_id, "counter", read=True)
        hits = pcu.stats.draco_hits
        assert pcu.check(read_access(isa_map, "vbase")) == 0
        assert pcu.stats.draco_hits == hits + 1

    def test_touched_csr_tuples_are_dropped(self, pcu, manager, isa_map,
                                            domain):
        prove(pcu, isa_map, "vbase")
        manager.revoke_register(domain.domain_id, "vbase", read=True)
        with pytest.raises(RegisterReadFault):
            pcu.check(read_access(isa_map, "vbase"))

    def test_other_domain_tuples_survive_any_edit(self, pcu, manager,
                                                  isa_map, domain):
        prove(pcu, isa_map, "vbase")
        other = manager.create_domain("other")
        manager.grant_register(other.domain_id, "vbase",
                               read=True, write=True)
        manager.revoke_register(other.domain_id, "vbase", write=True)
        hits = pcu.stats.draco_hits
        assert pcu.check(read_access(isa_map, "vbase")) == 0
        assert pcu.stats.draco_hits == hits + 1

    def test_instruction_edit_sweeps_whole_domain(self, pcu, manager,
                                                  isa_map, domain):
        prove(pcu, isa_map, "vbase")
        manager.allow_instructions(domain.domain_id, ["alu"])
        hits = pcu.stats.draco_hits
        pcu.check(read_access(isa_map, "vbase"))  # re-proves, no hit
        assert pcu.stats.draco_hits == hits


class TestMaskSlotIsolation:
    def write_access(self, isa_map, csr_name, old=0, new=0b0100):
        return AccessInfo(inst_class=isa_map.inst_class("csr"),
                          csr=isa_map.csr_index(csr_name),
                          csr_write=True, write_value=new, old_value=old)

    def test_unrelated_mask_edit_preserves_warm_slot(
            self, pcu, manager, isa_map, domain):
        manager.grant_register_bits(domain.domain_id, "ctrl", 0b1111)
        manager.grant_register_bits(domain.domain_id, "status", 0b1111)
        pcu.check(self.write_access(isa_map, "ctrl"))
        pcu.check(self.write_access(isa_map, "status"))
        ctrl_slot = isa_map.mask_slot(isa_map.csr_index("ctrl"))
        status_slot = isa_map.mask_slot(isa_map.csr_index("status"))
        cache = pcu.hpt_cache.mask
        assert cache.lookup((domain.domain_id, ctrl_slot)) is not None
        assert cache.lookup((domain.domain_id, status_slot)) is not None
        manager.set_register_mask(domain.domain_id, "ctrl", 0b0111)
        # the edited CSR's slot is dropped, the other survives warm
        assert cache.lookup((domain.domain_id, ctrl_slot)) is None
        assert cache.lookup((domain.domain_id, status_slot)) is not None

    def test_reg_word_narrowing_still_enforces(self, pcu, manager, isa_map,
                                               domain):
        # the narrowed sweep must not leave a stale read grant behind
        prove(pcu, isa_map, "counter")
        manager.revoke_register(domain.domain_id, "counter", read=True)
        with pytest.raises(RegisterReadFault):
            pcu.check(read_access(isa_map, "counter"))
