"""IsaGridIsaMap and the Table-2 extension description."""

import pytest

from repro.core import (
    AccessInfo,
    ConfigurationError,
    CsrDescriptor,
    GateKind,
    IsaGridIsaMap,
    NEW_INSTRUCTIONS,
    NEW_REGISTERS,
    PcuRegisters,
)


def make_map():
    return IsaGridIsaMap("demo", ["a", "b", "c"], [
        CsrDescriptor("reserved", 0),
        CsrDescriptor("plain", 1),
        CsrDescriptor("masked", 2, bitwise=True),
        CsrDescriptor("masked2", 3, bitwise=True),
    ])


class TestIsaMap:
    def test_class_index_lookup(self):
        isa = make_map()
        assert isa.inst_class("b") == 1
        assert isa.inst_class_name(2) == "c"

    def test_unknown_class(self):
        with pytest.raises(ConfigurationError):
            make_map().inst_class("nope")

    def test_csr_lookup(self):
        isa = make_map()
        assert isa.csr_index("plain") == 1
        assert isa.csr_name(2) == "masked"

    def test_unknown_csr(self):
        with pytest.raises(ConfigurationError):
            make_map().csr_index("nope")

    def test_mask_slots_assigned_in_order(self):
        isa = make_map()
        assert isa.mask_slot(isa.csr_index("masked")) == 0
        assert isa.mask_slot(isa.csr_index("masked2")) == 1
        assert isa.mask_slot(isa.csr_index("plain")) is None
        assert isa.n_masked_csrs == 2

    def test_duplicate_class_rejected(self):
        with pytest.raises(ConfigurationError):
            IsaGridIsaMap("bad", ["x", "x"], [CsrDescriptor("r", 0)])

    def test_duplicate_csr_rejected(self):
        with pytest.raises(ConfigurationError):
            IsaGridIsaMap("bad", ["x"], [
                CsrDescriptor("r", 0), CsrDescriptor("r", 1),
            ])

    def test_csr_index_must_match_position(self):
        with pytest.raises(ConfigurationError):
            IsaGridIsaMap("bad", ["x"], [CsrDescriptor("r", 5)])

    def test_real_maps_are_wellformed(self):
        from repro.riscv import RISCV_ISA_MAP
        from repro.x86 import X86_ISA_MAP

        for isa in (RISCV_ISA_MAP, X86_ISA_MAP):
            assert isa.n_inst_classes > 10
            assert isa.n_csrs > 10
            assert isa.csrs[0].name == "reserved"  # pfch-all encoding
            # every bitwise CSR has a slot, every plain one has none
            for csr in isa.csrs:
                if csr.bitwise:
                    assert csr.mask_slot is not None
                else:
                    assert csr.mask_slot is None

    def test_paper_bitwise_registers(self):
        """§7: sstatus on RISC-V; CR0 and CR4 on x86."""
        from repro.riscv import RISCV_ISA_MAP
        from repro.x86 import X86_ISA_MAP

        assert RISCV_ISA_MAP.csr_descriptor(
            RISCV_ISA_MAP.csr_index("sstatus")).bitwise
        assert X86_ISA_MAP.csr_descriptor(X86_ISA_MAP.csr_index("cr0")).bitwise
        assert X86_ISA_MAP.csr_descriptor(X86_ISA_MAP.csr_index("cr4")).bitwise
        assert not X86_ISA_MAP.csr_descriptor(X86_ISA_MAP.csr_index("cr3")).bitwise


class TestTable2Description:
    def test_all_new_instructions_documented(self):
        for mnemonic in ("hccall", "hccalls", "hcrets", "pfch", "pflh"):
            assert any(mnemonic in key for key in NEW_INSTRUCTIONS)

    def test_all_new_registers_documented(self):
        for name in ("domain", "csr-cap", "inst-cap", "gate-addr",
                     "hcsp", "tmemb"):
            assert any(name in key for key in NEW_REGISTERS)

    def test_pcu_registers_reset_state(self):
        registers = PcuRegisters()
        assert registers.domain == 0  # reset into domain-0 (§4.4)
        assert registers.pdomain == 0


class TestAccessInfo:
    def test_defaults(self):
        access = AccessInfo(inst_class=3)
        assert access.csr is None
        assert not access.csr_read and not access.csr_write
        assert access.write_value is None and access.old_value is None

    def test_frozen(self):
        access = AccessInfo(inst_class=3)
        with pytest.raises(Exception):
            access.inst_class = 4

    def test_gate_kinds_cover_table2(self):
        assert {k.name for k in GateKind} == {"HCCALL", "HCCALLS", "HCRETS"}
