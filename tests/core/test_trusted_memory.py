"""Trusted memory region and trusted stack (Sections 4.2, 4.5)."""

import pytest

from repro.core import (
    ConfigurationError,
    PcuRegisters,
    TrustedMemory,
    TrustedStack,
    TrustedStackFault,
    WordMemory,
)


class TestWordMemory:
    def test_default_zero(self):
        memory = WordMemory()
        assert memory.load_word(0x100) == 0

    def test_roundtrip(self):
        memory = WordMemory()
        memory.store_word(0x100, 0xDEADBEEF)
        assert memory.load_word(0x100) == 0xDEADBEEF

    def test_unaligned_rejected(self):
        memory = WordMemory()
        with pytest.raises(ValueError):
            memory.load_word(0x101)
        with pytest.raises(ValueError):
            memory.store_word(0x103, 1)

    def test_values_truncated_to_64_bits(self):
        memory = WordMemory()
        memory.store_word(0, 1 << 70 | 5)
        assert memory.load_word(0) == 5


class TestTrustedMemory:
    def test_power_of_two_required(self):
        with pytest.raises(ConfigurationError):
            TrustedMemory(base=0, size=3000)

    def test_alignment_required(self):
        with pytest.raises(ConfigurationError):
            TrustedMemory(base=0x1234, size=1 << 12)

    def test_contains_is_mask_compare(self):
        memory = TrustedMemory(base=0x100000, size=1 << 20)
        assert memory.contains(0x100000)
        assert memory.contains(0x1FFFFF)
        assert not memory.contains(0x200000)
        assert not memory.contains(0xFFFFF)

    def test_store_and_load(self):
        memory = TrustedMemory(base=0x100000, size=1 << 20)
        memory.store_word(0x100008, 42)
        assert memory.load_word(0x100008) == 42

    def test_out_of_region_access_rejected(self):
        memory = TrustedMemory(base=0x100000, size=1 << 20)
        with pytest.raises(ConfigurationError):
            memory.store_word(0x200000, 1)
        with pytest.raises(ConfigurationError):
            memory.load_word(0x0)

    def test_allocate_bumps(self):
        memory = TrustedMemory(base=0x100000, size=1 << 20)
        a = memory.allocate(4)
        b = memory.allocate(2)
        assert b == a + 32

    def test_allocate_exhaustion(self):
        memory = TrustedMemory(base=0x100000, size=1 << 12)
        memory.allocate(500)
        with pytest.raises(ConfigurationError):
            memory.allocate(100)

    def test_words_free(self):
        memory = TrustedMemory(base=0x100000, size=1 << 12)
        before = memory.words_free
        memory.allocate(10)
        assert memory.words_free == before - 10


class TestTrustedStack:
    @pytest.fixture
    def stack(self):
        memory = TrustedMemory(base=0x100000, size=1 << 20)
        registers = PcuRegisters()
        stack = TrustedStack(memory, registers)
        base = memory.allocate(8)  # 4 frames
        stack.configure(base, base + 8 * 8)
        return stack, registers

    def test_push_pop_roundtrip(self, stack):
        trusted_stack, registers = stack
        trusted_stack.push(0x1234, 7)
        address, domain = trusted_stack.pop()
        assert (address, domain) == (0x1234, 7)

    def test_lifo_order(self, stack):
        trusted_stack, _ = stack
        trusted_stack.push(1, 10)
        trusted_stack.push(2, 20)
        assert trusted_stack.pop() == (2, 20)
        assert trusted_stack.pop() == (1, 10)

    def test_depth(self, stack):
        trusted_stack, _ = stack
        assert trusted_stack.depth == 0
        trusted_stack.push(1, 1)
        trusted_stack.push(2, 2)
        assert trusted_stack.depth == 2

    def test_underflow_faults(self, stack):
        trusted_stack, _ = stack
        with pytest.raises(TrustedStackFault):
            trusted_stack.pop()

    def test_overflow_faults(self, stack):
        trusted_stack, _ = stack
        for i in range(4):
            trusted_stack.push(i, i)
        with pytest.raises(TrustedStackFault):
            trusted_stack.push(99, 99)

    def test_configure_outside_region_rejected(self):
        memory = TrustedMemory(base=0x100000, size=1 << 12)
        stack = TrustedStack(memory, PcuRegisters())
        with pytest.raises(ConfigurationError):
            stack.configure(0x200000, 0x200100)

    def test_configure_empty_window_rejected(self):
        memory = TrustedMemory(base=0x100000, size=1 << 12)
        stack = TrustedStack(memory, PcuRegisters())
        with pytest.raises(ConfigurationError):
            stack.configure(0x100100, 0x100100)

    def test_context_save_restore(self, stack):
        """Per-thread trusted stacks (Section 5.2)."""
        trusted_stack, registers = stack
        trusted_stack.push(5, 1)
        context = trusted_stack.save_context()
        registers.hcsp = registers.hcsb  # simulate a different thread
        trusted_stack.restore_context(context)
        assert trusted_stack.pop() == (5, 1)
