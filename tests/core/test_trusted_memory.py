"""Trusted memory region and trusted stack (Sections 4.2, 4.5)."""

import pytest

from repro.core import (
    ConfigurationError,
    PcuRegisters,
    TrustedMemory,
    TrustedStack,
    TrustedStackFault,
    WordMemory,
)


class TestWordMemory:
    def test_default_zero(self):
        memory = WordMemory()
        assert memory.load_word(0x100) == 0

    def test_roundtrip(self):
        memory = WordMemory()
        memory.store_word(0x100, 0xDEADBEEF)
        assert memory.load_word(0x100) == 0xDEADBEEF

    def test_unaligned_rejected(self):
        memory = WordMemory()
        with pytest.raises(ValueError):
            memory.load_word(0x101)
        with pytest.raises(ValueError):
            memory.store_word(0x103, 1)

    def test_values_truncated_to_64_bits(self):
        memory = WordMemory()
        memory.store_word(0, 1 << 70 | 5)
        assert memory.load_word(0) == 5


class TestTrustedMemory:
    def test_power_of_two_required(self):
        with pytest.raises(ConfigurationError):
            TrustedMemory(base=0, size=3000)

    def test_alignment_required(self):
        with pytest.raises(ConfigurationError):
            TrustedMemory(base=0x1234, size=1 << 12)

    def test_contains_is_mask_compare(self):
        memory = TrustedMemory(base=0x100000, size=1 << 20)
        assert memory.contains(0x100000)
        assert memory.contains(0x1FFFFF)
        assert not memory.contains(0x200000)
        assert not memory.contains(0xFFFFF)

    def test_store_and_load(self):
        memory = TrustedMemory(base=0x100000, size=1 << 20)
        memory.store_word(0x100008, 42)
        assert memory.load_word(0x100008) == 42

    def test_out_of_region_access_rejected(self):
        memory = TrustedMemory(base=0x100000, size=1 << 20)
        with pytest.raises(ConfigurationError):
            memory.store_word(0x200000, 1)
        with pytest.raises(ConfigurationError):
            memory.load_word(0x0)

    def test_allocate_bumps(self):
        memory = TrustedMemory(base=0x100000, size=1 << 20)
        a = memory.allocate(4)
        b = memory.allocate(2)
        assert b == a + 32

    def test_allocate_exhaustion(self):
        memory = TrustedMemory(base=0x100000, size=1 << 12)
        memory.allocate(500)
        with pytest.raises(ConfigurationError):
            memory.allocate(100)

    def test_words_free(self):
        memory = TrustedMemory(base=0x100000, size=1 << 12)
        before = memory.words_free
        memory.allocate(10)
        assert memory.words_free == before - 10


class TestTrustedStack:
    @pytest.fixture
    def stack(self):
        memory = TrustedMemory(base=0x100000, size=1 << 20)
        registers = PcuRegisters()
        stack = TrustedStack(memory, registers)
        base = memory.allocate(8)  # 4 frames
        stack.configure(base, base + 8 * 8)
        return stack, registers

    def test_push_pop_roundtrip(self, stack):
        trusted_stack, registers = stack
        trusted_stack.push(0x1234, 7)
        address, domain = trusted_stack.pop()
        assert (address, domain) == (0x1234, 7)

    def test_lifo_order(self, stack):
        trusted_stack, _ = stack
        trusted_stack.push(1, 10)
        trusted_stack.push(2, 20)
        assert trusted_stack.pop() == (2, 20)
        assert trusted_stack.pop() == (1, 10)

    def test_depth(self, stack):
        trusted_stack, _ = stack
        assert trusted_stack.depth == 0
        trusted_stack.push(1, 1)
        trusted_stack.push(2, 2)
        assert trusted_stack.depth == 2

    def test_underflow_faults(self, stack):
        trusted_stack, _ = stack
        with pytest.raises(TrustedStackFault):
            trusted_stack.pop()

    def test_overflow_faults(self, stack):
        trusted_stack, _ = stack
        for i in range(4):
            trusted_stack.push(i, i)
        with pytest.raises(TrustedStackFault):
            trusted_stack.push(99, 99)

    def test_configure_outside_region_rejected(self):
        memory = TrustedMemory(base=0x100000, size=1 << 12)
        stack = TrustedStack(memory, PcuRegisters())
        with pytest.raises(ConfigurationError):
            stack.configure(0x200000, 0x200100)

    def test_configure_empty_window_rejected(self):
        memory = TrustedMemory(base=0x100000, size=1 << 12)
        stack = TrustedStack(memory, PcuRegisters())
        with pytest.raises(ConfigurationError):
            stack.configure(0x100100, 0x100100)

    def test_context_save_restore(self, stack):
        """Per-thread trusted stacks (Section 5.2)."""
        trusted_stack, registers = stack
        trusted_stack.push(5, 1)
        context = trusted_stack.save_context()
        registers.hcsp = registers.hcsb  # simulate a different thread
        trusted_stack.restore_context(context)
        assert trusted_stack.pop() == (5, 1)

    def test_overflow_preserves_existing_frames(self, stack):
        trusted_stack, _ = stack
        for i in range(4):
            trusted_stack.push(0x1000 + i, i + 1)
        with pytest.raises(TrustedStackFault):
            trusted_stack.push(0x9999, 9)
        assert trusted_stack.depth == 4
        assert trusted_stack.pop() == (0x1003, 4)  # top frame untouched

    def test_underflow_after_drain(self, stack):
        trusted_stack, _ = stack
        trusted_stack.push(1, 1)
        trusted_stack.pop()
        with pytest.raises(TrustedStackFault):
            trusted_stack.pop()
        assert trusted_stack.depth == 0

    def test_frames_live_in_trusted_memory(self):
        """The stack is trusted-memory words, not hidden python state —
        that is what makes non-domain-0 writes to it a real threat."""
        memory = TrustedMemory(base=0x100000, size=1 << 20)
        registers = PcuRegisters()
        trusted_stack = TrustedStack(memory, registers)
        base = memory.allocate(8)
        trusted_stack.configure(base, base + 8 * 8)
        trusted_stack.push(0xCAFE, 3)
        assert memory.load_word(base) == 0xCAFE
        assert memory.load_word(base + 8) == 3


class TestNonDomainZeroRejection:
    """Satellite coverage: only domain-0 may touch trusted memory —
    including the trusted-stack words (via the PCU's access filter)."""

    def _enter(self, pcu, manager, domain_id):
        from repro.core import GateKind

        gate = manager.register_gate(0x1000, 0x2000, domain_id)
        pcu.execute_gate(GateKind.HCCALL, gate, 0x1000)

    def test_stack_words_unwritable_outside_domain0(self, pcu, manager):
        from repro.core import TrustedMemoryFault

        base, limit = manager.allocate_trusted_stack(frames=4)
        domain = manager.create_domain("guest")
        self._enter(pcu, manager, domain.domain_id)
        for address in (base, limit - 8):
            with pytest.raises(TrustedMemoryFault):
                pcu.check_memory_access(address)

    def test_region_boundaries_are_exact(self, pcu, manager):
        from repro.core import TrustedMemoryFault

        domain = manager.create_domain("guest")
        self._enter(pcu, manager, domain.domain_id)
        memory = pcu.trusted_memory
        with pytest.raises(TrustedMemoryFault):
            pcu.check_memory_access(memory.base)
        with pytest.raises(TrustedMemoryFault):
            pcu.check_memory_access(memory.base + memory.size - 1)
        pcu.check_memory_access(memory.base - 1)      # just below
        pcu.check_memory_access(memory.base + memory.size)  # just above

    def test_fault_names_offender_and_victim(self, pcu, manager):
        from repro.core import TrustedMemoryFault

        domain = manager.create_domain("guest")
        self._enter(pcu, manager, domain.domain_id)
        with pytest.raises(TrustedMemoryFault) as excinfo:
            pcu.check_memory_access(pcu.trusted_memory.base + 64, pc=0x7777)
        assert excinfo.value.domain == domain.domain_id
        assert excinfo.value.address == 0x7777
