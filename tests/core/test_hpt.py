"""The Hybrid Privilege Table: layout, write-through, refill reads."""

import pytest

from repro.core import ConfigurationError, HybridPrivilegeTable, TrustedMemory


@pytest.fixture
def hpt(isa_map):
    memory = TrustedMemory(base=0x100000, size=1 << 20)
    return HybridPrivilegeTable(isa_map, memory, max_domains=16)


class TestLayout:
    def test_regions_are_disjoint(self, hpt):
        inst_end = hpt.inst_cap + hpt.max_domains * hpt.inst_words_per_domain * 8
        assert hpt.csr_cap >= inst_end
        reg_end = hpt.csr_cap + hpt.max_domains * hpt.reg_words_per_domain * 8
        assert hpt.csr_bit_mask >= reg_end

    def test_domain_major_addressing(self, hpt):
        a0 = hpt.inst_word_address(0, 0)
        a1 = hpt.inst_word_address(1, 0)
        assert a1 - a0 == hpt.inst_words_per_domain * 8

    def test_word_index_bounds(self, hpt):
        with pytest.raises(IndexError):
            hpt.inst_word_address(0, hpt.inst_words_per_domain)
        with pytest.raises(IndexError):
            hpt.reg_word_address(0, hpt.reg_words_per_domain)

    def test_domain_bounds(self, hpt):
        with pytest.raises(ConfigurationError):
            hpt.inst_word_address(16, 0)
        with pytest.raises(ConfigurationError):
            hpt.allow_instruction(-1, 0)

    def test_mask_slots_only_for_bitwise_csrs(self, hpt, isa_map):
        assert hpt.mask_words_per_domain == isa_map.n_masked_csrs == 2

    def test_footprint(self, hpt):
        expected = 2 * 16 * (
            hpt.inst_words_per_domain
            + hpt.reg_words_per_domain
            + hpt.mask_words_per_domain
        )
        assert hpt.footprint_words() == expected


class TestWriteThrough:
    def test_instruction_grant_lands_in_memory(self, hpt):
        hpt.allow_instruction(3, 2)
        assert hpt.read_inst_word(3, 0) == 1 << 2

    def test_instruction_deny_clears_bit(self, hpt):
        hpt.allow_instruction(3, 2)
        hpt.deny_instruction(3, 2)
        assert hpt.read_inst_word(3, 0) == 0

    def test_allow_all_instructions(self, hpt, isa_map):
        hpt.allow_all_instructions(1)
        word = hpt.read_inst_word(1, 0)
        assert word == (1 << isa_map.n_inst_classes) - 1

    def test_register_grant_lands_in_memory(self, hpt):
        hpt.grant_register(2, 1, read=True)
        assert hpt.read_reg_word(2, 0) == 1 << 2  # read bit of CSR 1

    def test_register_write_bit(self, hpt):
        hpt.grant_register(2, 1, write=True)
        assert hpt.read_reg_word(2, 0) == 1 << 3  # write bit of CSR 1

    def test_revoke_register(self, hpt):
        hpt.grant_register(2, 1, read=True, write=True)
        hpt.revoke_register(2, 1, write=True)
        assert hpt.read_reg_word(2, 0) == 1 << 2

    def test_grant_all_registers(self, hpt, isa_map):
        hpt.grant_all_registers(4)
        word = hpt.read_reg_word(4, 0)
        assert word == (1 << 2 * isa_map.n_csrs) - 1

    def test_mask_write_through(self, hpt, isa_map):
        ctrl = isa_map.csr_index("ctrl")
        hpt.set_mask(5, ctrl, 0xF0)
        slot = isa_map.mask_slot(ctrl)
        assert hpt.read_mask(5, slot) == 0xF0

    def test_allow_bits_accumulates(self, hpt, isa_map):
        ctrl = isa_map.csr_index("ctrl")
        hpt.allow_bits(5, ctrl, 0x0F)
        hpt.allow_bits(5, ctrl, 0xF0)
        assert hpt.read_mask(5, isa_map.mask_slot(ctrl)) == 0xFF

    def test_mask_on_non_bitwise_csr_rejected(self, hpt, isa_map):
        with pytest.raises(ConfigurationError):
            hpt.set_mask(5, isa_map.csr_index("vbase"), 0xFF)

    def test_set_all_masks(self, hpt, isa_map):
        hpt.set_all_masks(6, 0x3)
        for slot in range(isa_map.n_masked_csrs):
            assert hpt.read_mask(6, slot) == 0x3

    def test_domains_are_isolated(self, hpt):
        hpt.allow_instruction(1, 0)
        assert hpt.read_inst_word(2, 0) == 0

    def test_read_inst_words_covers_domain(self, hpt):
        hpt.allow_instruction(1, 0)
        words = hpt.read_inst_words(1)
        assert len(words) == hpt.inst_words_per_domain
        assert words[0] == 1
