"""The Privilege Check Unit: hybrid checks, gates, caches, domain-0."""

import pytest

from repro.core import (
    AccessInfo,
    BitMaskViolationFault,
    CacheId,
    ConfigurationError,
    GateFault,
    GateKind,
    InstructionPrivilegeFault,
    RegisterReadFault,
    RegisterWriteFault,
    TrustedMemoryFault,
    TrustedStackFault,
)
from repro.core.pcu import DOMAIN_0


def enter(pcu, manager, domain_id, *, at=0x1000, to=0x2000):
    """Register a throwaway gate and hop into ``domain_id``."""
    gate = manager.register_gate(at, to, domain_id)
    target, _ = pcu.execute_gate(GateKind.HCCALL, gate, at)
    assert target == to
    return gate


@pytest.fixture
def kernel_domain(manager, isa_map):
    domain = manager.create_domain("kernel")
    manager.allow_instructions(domain.domain_id, ["alu", "load", "store", "csr"])
    manager.grant_register(domain.domain_id, "vbase", read=True)
    manager.grant_register_bits(domain.domain_id, "ctrl", 0b1100)
    return domain


class TestInstructionCheck:
    def test_domain0_passes_everything(self, pcu, isa_map):
        for name in isa_map.inst_class_names:
            assert pcu.check(AccessInfo(inst_class=isa_map.inst_class(name))) == 0

    def test_granted_class_passes(self, pcu, manager, isa_map, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))

    def test_denied_class_faults(self, pcu, manager, isa_map, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        with pytest.raises(InstructionPrivilegeFault):
            pcu.check(AccessInfo(inst_class=isa_map.inst_class("sysop")))

    def test_first_check_fills_bypass(self, pcu, manager, isa_map, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        stall = pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        assert stall > 0  # bypass fill misses in the cold cache
        assert pcu.stats.bypass_fills == 1
        stall = pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        assert stall == 0
        assert pcu.stats.bypass_hits == 1

    def test_bypass_disabled_uses_cache(self, isa_map, trusted_memory, manager, kernel_domain):
        # Build a PCU with bypass off sharing nothing with the fixture.
        from repro.core import PcuConfig, PrivilegeCheckUnit, DomainManager, TrustedMemory

        config = PcuConfig(bypass_enabled=False)
        pcu = PrivilegeCheckUnit(isa_map, config, TrustedMemory(0x100000, 1 << 20))
        manager = DomainManager(pcu)
        domain = manager.create_domain("kernel")
        manager.allow_instructions(domain.domain_id, ["alu"])
        enter(pcu, manager, domain.domain_id)
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        assert pcu.stats.bypass_fills == 0
        assert pcu.stats.inst_cache.lookups == 2

    def test_disabled_pcu_checks_nothing(self, pcu, isa_map):
        pcu.enabled = False
        assert pcu.check(AccessInfo(inst_class=isa_map.inst_class("sysop"))) == 0

    def test_fault_recorded_in_stats(self, pcu, manager, isa_map, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        with pytest.raises(InstructionPrivilegeFault):
            pcu.check(AccessInfo(inst_class=isa_map.inst_class("halt")))
        assert pcu.stats.faults["InstructionPrivilegeFault"] == 1


class TestRegisterCheck:
    def test_read_granted(self, pcu, manager, isa_map, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        pcu.check(AccessInfo(
            inst_class=isa_map.inst_class("csr"),
            csr=isa_map.csr_index("vbase"), csr_read=True,
        ))

    def test_read_denied(self, pcu, manager, isa_map, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        with pytest.raises(RegisterReadFault):
            pcu.check(AccessInfo(
                inst_class=isa_map.inst_class("csr"),
                csr=isa_map.csr_index("scratch"), csr_read=True,
            ))

    def test_write_denied_on_plain_csr(self, pcu, manager, isa_map, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        with pytest.raises(RegisterWriteFault):
            pcu.check(AccessInfo(
                inst_class=isa_map.inst_class("csr"),
                csr=isa_map.csr_index("vbase"), csr_write=True,
                write_value=1, old_value=0,
            ))

    def test_bitwise_write_within_mask(self, pcu, manager, isa_map, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        pcu.check(AccessInfo(
            inst_class=isa_map.inst_class("csr"),
            csr=isa_map.csr_index("ctrl"), csr_write=True,
            write_value=0b0100, old_value=0,
        ))

    def test_bitwise_write_outside_mask_faults(self, pcu, manager, isa_map, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        with pytest.raises(BitMaskViolationFault):
            pcu.check(AccessInfo(
                inst_class=isa_map.inst_class("csr"),
                csr=isa_map.csr_index("ctrl"), csr_write=True,
                write_value=0b0001, old_value=0,
            ))

    def test_bitwise_identity_write_passes(self, pcu, manager, isa_map, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        pcu.check(AccessInfo(
            inst_class=isa_map.inst_class("csr"),
            csr=isa_map.csr_index("ctrl"), csr_write=True,
            write_value=0xABCD, old_value=0xABCD,
        ))

    def test_bitwise_write_requires_values(self, pcu, manager, isa_map, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        with pytest.raises(ConfigurationError):
            pcu.check(AccessInfo(
                inst_class=isa_map.inst_class("csr"),
                csr=isa_map.csr_index("ctrl"), csr_write=True,
            ))

    def test_masks_ignored_for_reads(self, pcu, manager, isa_map, kernel_domain):
        """Bit-masks only gate writes (Section 4.1)."""
        manager.grant_register(kernel_domain.domain_id, "ctrl", read=True)
        enter(pcu, manager, kernel_domain.domain_id)
        pcu.check(AccessInfo(
            inst_class=isa_map.inst_class("csr"),
            csr=isa_map.csr_index("ctrl"), csr_read=True,
        ))
        assert pcu.stats.mask_checks == 0


class TestGates:
    def test_basic_switch(self, pcu, manager, kernel_domain):
        gate = manager.register_gate(0x1000, 0x2000, kernel_domain.domain_id)
        target, _ = pcu.execute_gate(GateKind.HCCALL, gate, 0x1000)
        assert target == 0x2000
        assert pcu.current_domain == kernel_domain.domain_id
        assert pcu.previous_domain == DOMAIN_0

    def test_wrong_address_faults(self, pcu, manager, kernel_domain):
        """Property (i): injected/ROP gates die on the address check."""
        gate = manager.register_gate(0x1000, 0x2000, kernel_domain.domain_id)
        with pytest.raises(GateFault):
            pcu.execute_gate(GateKind.HCCALL, gate, 0x1004)

    def test_unregistered_gate_faults(self, pcu):
        with pytest.raises(GateFault):
            pcu.execute_gate(GateKind.HCCALL, 7, 0x1000)

    def test_extended_call_and_return(self, pcu, manager, kernel_domain):
        manager.allocate_trusted_stack()
        gate = manager.register_gate(0x1000, 0x2000, kernel_domain.domain_id)
        pcu.execute_gate(GateKind.HCCALLS, gate, 0x1000, return_address=0x1004)
        assert pcu.current_domain == kernel_domain.domain_id
        # hcrets from the new domain returns to the saved frame...
        # except the frame's source is domain-0 — which is forbidden.
        with pytest.raises(GateFault):
            pcu.execute_gate(GateKind.HCRETS, 0, 0x2000)

    def test_extended_return_to_non_zero_domain(self, pcu, manager, kernel_domain):
        other = manager.create_domain("other")
        manager.allocate_trusted_stack()
        enter(pcu, manager, kernel_domain.domain_id)
        gate = manager.register_gate(0x3000, 0x4000, other.domain_id)
        pcu.execute_gate(GateKind.HCCALLS, gate, 0x3000, return_address=0x3004)
        assert pcu.current_domain == other.domain_id
        target, _ = pcu.execute_gate(GateKind.HCRETS, 0, 0x4000)
        assert target == 0x3004
        assert pcu.current_domain == kernel_domain.domain_id

    def test_hccalls_requires_return_address(self, pcu, manager, kernel_domain):
        manager.allocate_trusted_stack()
        gate = manager.register_gate(0x1000, 0x2000, kernel_domain.domain_id)
        with pytest.raises(ConfigurationError):
            pcu.execute_gate(GateKind.HCCALLS, gate, 0x1000)

    def test_hcrets_on_empty_stack_faults(self, pcu, manager):
        manager.allocate_trusted_stack()
        with pytest.raises(TrustedStackFault):
            pcu.execute_gate(GateKind.HCRETS, 0, 0x1000)

    def test_switch_stats(self, pcu, manager, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        assert pcu.stats.domain_switches == 1
        assert pcu.stats.gate_calls == 1

    def test_gate_invalidates_bypass(self, pcu, manager, isa_map, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        assert pcu.bypass.loaded_domain == kernel_domain.domain_id
        other = manager.create_domain("other")
        enter(pcu, manager, other.domain_id, at=0x5000, to=0x6000)
        assert pcu.bypass.loaded_domain is None


class TestCacheManagement:
    def test_prefetch_then_hit(self, pcu, manager, isa_map, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        pcu.prefetch(isa_map.csr_index("vbase"))
        stall = pcu.check(AccessInfo(
            inst_class=isa_map.inst_class("csr"),
            csr=isa_map.csr_index("vbase"), csr_read=True,
        ))
        # only the instruction-bitmap fill may stall; the CSR word hits
        assert pcu.stats.reg_cache.hits >= 1

    def test_prefetch_all(self, pcu, manager, isa_map, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        pcu.prefetch(0)
        assert pcu.stats.reg_cache.prefetch_fills > 0

    def test_prefetch_disabled_is_noop(self, isa_map):
        from repro.core import PcuConfig, PrivilegeCheckUnit, TrustedMemory

        config = PcuConfig(prefetch_enabled=False)
        pcu = PrivilegeCheckUnit(isa_map, config, TrustedMemory(0x100000, 1 << 20))
        pcu.prefetch(0)
        assert pcu.stats.reg_cache.prefetch_fills == 0

    def test_flush_all(self, pcu, manager, isa_map, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        pcu.flush(CacheId.ALL)
        assert pcu.bypass.loaded_domain is None
        assert pcu.stats.inst_cache.flushes == 1
        assert pcu.stats.sgt_cache.flushes == 1

    def test_flush_single_module(self, pcu, manager, isa_map, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        pcu.flush(CacheId.SGT)
        assert pcu.stats.sgt_cache.flushes == 1
        assert pcu.stats.inst_cache.flushes == 0
        assert pcu.bypass.loaded_domain == kernel_domain.domain_id


class TestInvalidatePrivileges:
    def _warm(self, pcu, domain):
        pcu.hpt_cache.inst_word(domain, 0, pcu.stats.inst_cache)
        pcu.hpt_cache.reg_word(domain, 0, pcu.stats.reg_cache)
        pcu.hpt_cache.mask_word(domain, 0, pcu.stats.mask_cache)

    def test_sweeps_one_domain_only(self, pcu):
        self._warm(pcu, 1)
        self._warm(pcu, 2)
        pcu.invalidate_privileges(1)
        assert pcu.hpt_cache.inst.lookup((1, 0)) is None
        assert pcu.hpt_cache.reg.lookup((1, 0)) is None
        assert pcu.hpt_cache.mask.lookup((1, 0)) is None
        assert pcu.hpt_cache.inst.lookup((2, 0)) is not None

    def test_none_sweeps_everything(self, pcu):
        self._warm(pcu, 1)
        self._warm(pcu, 2)
        pcu.invalidate_privileges()
        for cache in (pcu.hpt_cache.inst, pcu.hpt_cache.reg, pcu.hpt_cache.mask):
            assert len(cache) == 0

    def test_bypass_dropped_only_for_its_domain(self, pcu):
        pcu.bypass.load(1, [0b1])
        pcu.invalidate_privileges(2)
        assert pcu.bypass.loaded_domain == 1
        pcu.invalidate_privileges(1)
        assert pcu.bypass.loaded_domain is None

    def test_grant_after_cached_denial_takes_effect(
        self, pcu, manager, isa_map, kernel_domain
    ):
        """The stale-denial regression: a word cached while a class was
        denied must not keep faulting after domain-0 grants it."""
        enter(pcu, manager, kernel_domain.domain_id)
        with pytest.raises(InstructionPrivilegeFault):
            pcu.check(AccessInfo(inst_class=isa_map.inst_class("sysop")))
        manager.allow_instructions(kernel_domain.domain_id, ["sysop"])
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("sysop")))

    def test_revoke_after_cached_grant_takes_effect(
        self, pcu, manager, isa_map, kernel_domain
    ):
        enter(pcu, manager, kernel_domain.domain_id)
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        manager.deny_instruction(kernel_domain.domain_id, "alu")
        with pytest.raises(InstructionPrivilegeFault):
            pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))


class TestTrustedMemoryEnforcement:
    def test_domain0_may_touch_trusted_memory(self, pcu):
        pcu.check_memory_access(pcu.trusted_memory.base)

    def test_other_domains_fault(self, pcu, manager, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        with pytest.raises(TrustedMemoryFault):
            pcu.check_memory_access(pcu.trusted_memory.base + 64)

    def test_outside_region_unrestricted(self, pcu, manager, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        pcu.check_memory_access(0x4000)

    def test_disabled_pcu_skips_check(self, pcu, manager, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        pcu.enabled = False
        pcu.check_memory_access(pcu.trusted_memory.base)


class TestReset:
    def test_reset_returns_to_domain0(self, pcu, manager, kernel_domain):
        enter(pcu, manager, kernel_domain.domain_id)
        pcu.reset()
        assert pcu.current_domain == DOMAIN_0
        assert pcu.bypass.loaded_domain is None
