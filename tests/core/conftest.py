"""Shared fixtures for the core test suite: a small synthetic ISA map."""

import pytest

from repro.core import (
    CONFIG_8E,
    CsrDescriptor,
    DomainManager,
    IsaGridIsaMap,
    PcuConfig,
    PrivilegeCheckUnit,
    TrustedMemory,
)

TEST_CLASSES = ["alu", "load", "store", "csr", "sysop", "halt"]

TEST_CSRS = [
    CsrDescriptor("reserved", 0),
    CsrDescriptor("ctrl", 1, bitwise=True),
    CsrDescriptor("vbase", 2),
    CsrDescriptor("scratch", 3),
    CsrDescriptor("status", 4, bitwise=True),
    CsrDescriptor("counter", 5),
]


@pytest.fixture
def isa_map():
    return IsaGridIsaMap("testarch", TEST_CLASSES, [
        CsrDescriptor(d.name, d.index, d.width, d.bitwise) for d in TEST_CSRS
    ])


@pytest.fixture
def trusted_memory():
    return TrustedMemory(base=0x100000, size=1 << 20)


@pytest.fixture
def pcu(isa_map, trusted_memory):
    return PrivilegeCheckUnit(isa_map, CONFIG_8E, trusted_memory)


@pytest.fixture
def manager(pcu):
    return DomainManager(pcu)
