"""DomainVirtualizer: slot recycling, eviction policy, generation guard.

Unit coverage for DESIGN §3.17 — logical tenants multiplexed over a
bounded physical slot pool.  The properties under test are the three
safety mechanisms: generation counters hard-fault stale cores,
flush-on-reuse is transactional (an aborted bind leaks nothing, not
even the free-list slot), and saturation degrades to LRU eviction plus
catchable backpressure rather than a crash or a silent reuse.
"""

import pytest

from repro.core import (
    AccessInfo,
    DomainVirtualizer,
    GateKind,
    SlotExhausted,
    StaleGenerationFault,
    TenantManifest,
)
from repro.core.errors import ConfigurationError, InjectedFault
from repro.core.pcu import DOMAIN_0


@pytest.fixture
def virtualizer(manager):
    return DomainVirtualizer(manager, max_slots=3)


def spawn_bound(virtualizer, *classes):
    """Spawn a tenant with the given instruction grants and bind it."""
    logical = virtualizer.spawn(TenantManifest(instructions=set(classes)))
    return logical, virtualizer.activate(logical)


def enter(virtualizer, physical):
    """Drive the core through the slot's registered gate (HCCALL)."""
    pcu = virtualizer.pcu
    target, _stall = pcu.execute_gate(
        GateKind.HCCALL, virtualizer.gate_id_of(physical),
        virtualizer.gate_address_of(physical), None)
    assert target == virtualizer.dest_address_of(physical)
    assert pcu.current_domain == physical


class TestBinding:
    def test_activate_binds_and_replays_manifest(self, virtualizer, manager):
        logical, physical = spawn_bound(virtualizer, "alu", "load")
        assert virtualizer.bindings[logical] == physical
        assert virtualizer.slot_owner[physical] == logical
        assert manager.domains[physical].instructions == {"alu", "load"}
        assert virtualizer.stats.binds == 1

    def test_activate_is_idempotent_while_bound(self, virtualizer):
        logical, physical = spawn_bound(virtualizer, "alu")
        assert virtualizer.activate(logical) == physical
        assert virtualizer.stats.binds == 1

    def test_retire_recycles_slot_and_bumps_generation(self, virtualizer):
        logical, physical = spawn_bound(virtualizer, "alu")
        address = virtualizer.generation_address_of(physical)
        memory = virtualizer.pcu.trusted_memory
        assert virtualizer.generations[physical] == 0
        assert memory.load_word(address) == 0
        virtualizer.retire(logical)
        # Generation advanced in both the trusted word and the mirror,
        # and the slot went back on the free list for the next tenant.
        assert virtualizer.generations[physical] == 1
        assert memory.load_word(address) == 1
        assert physical in virtualizer.free_slots
        assert physical not in virtualizer.slot_owner
        assert virtualizer.stats.recycles == 1

    def test_recycled_slot_serves_fresh_manifest_only(self, virtualizer,
                                                      manager):
        first, physical = spawn_bound(virtualizer, "alu", "store")
        virtualizer.retire(first)
        second, rebound = spawn_bound(virtualizer, "load")
        assert rebound == physical  # FIFO free list reuses the slot
        assert manager.domains[physical].instructions == {"load"}

    def test_reconfig_tracks_manifest_and_bound_slot(self, virtualizer,
                                                     manager):
        logical, physical = spawn_bound(virtualizer, "alu")
        virtualizer.allow_instructions(logical, ["store"])
        virtualizer.deny_instruction(logical, "alu")
        virtualizer.grant_register(logical, "ctrl", read=True)
        assert manager.domains[physical].instructions == {"store"}
        assert manager.domains[physical].readable_csrs == {"ctrl"}
        assert virtualizer.tenants[logical].instructions == {"store"}
        assert virtualizer.slot_conforms(physical)

    def test_unknown_tenant_is_a_configuration_error(self, virtualizer):
        with pytest.raises(ConfigurationError):
            virtualizer.activate(999)
        with pytest.raises(ConfigurationError):
            virtualizer.retire(999)


class TestEviction:
    def test_lru_victim_is_least_recently_activated(self, virtualizer):
        t1, p1 = spawn_bound(virtualizer, "alu")
        t2, p2 = spawn_bound(virtualizer, "alu")
        t3, p3 = spawn_bound(virtualizer, "alu")
        virtualizer.activate(t1)  # freshen t1; t2 becomes the LRU
        t4, p4 = spawn_bound(virtualizer, "alu")
        assert p4 == p2  # t2's slot was recycled
        assert t2 not in virtualizer.bindings
        assert virtualizer.bindings[t1] == p1
        assert virtualizer.stats.slot_exhausted == 1
        assert virtualizer.stats.evictions == 1
        # The evicted tenant is only unbound, not destroyed: touching it
        # again transparently rebinds.
        assert virtualizer.activate(t2) in (p1, p2, p3, p4)

    def test_pinned_tenants_survive_saturation(self, virtualizer):
        tenants = [spawn_bound(virtualizer, "alu") for _ in range(3)]
        for logical, _ in tenants:
            virtualizer.pin(logical)
        before = virtualizer.stats.slot_exhausted
        overflow = virtualizer.spawn(TenantManifest())
        with pytest.raises(SlotExhausted):
            virtualizer.activate(overflow)
        assert virtualizer.stats.slot_exhausted == before + 1
        # Backpressure is recoverable: unpinning makes room again.
        virtualizer.unpin(tenants[0][0])
        assert virtualizer.activate(overflow) == tenants[0][1]

    def test_core_resident_slot_is_never_evicted(self, virtualizer):
        t1, p1 = spawn_bound(virtualizer, "alu")
        enter(virtualizer, p1)
        t2, p2 = spawn_bound(virtualizer, "alu")
        t3, p3 = spawn_bound(virtualizer, "alu")
        # t1 is the oldest binding but the core sits inside it (and the
        # slots pool is saturated) — the victim must be another slot.
        t4, p4 = spawn_bound(virtualizer, "alu")
        assert virtualizer.bindings[t1] == p1
        assert p4 != p1


class TestGenerationGuard:
    def test_check_after_recycle_hard_faults(self, virtualizer):
        logical, physical = spawn_bound(virtualizer, "alu")
        enter(virtualizer, physical)
        virtualizer.pcu.check(AccessInfo(0))  # granted, current generation
        virtualizer.retire(logical)  # recycles the slot under the core
        with pytest.raises(StaleGenerationFault) as excinfo:
            virtualizer.pcu.check(AccessInfo(0))
        assert excinfo.value.domain == physical

    def test_gate_after_recycle_hard_faults(self, virtualizer):
        t1, p1 = spawn_bound(virtualizer, "alu")
        t2, p2 = spawn_bound(virtualizer, "alu")
        enter(virtualizer, p1)
        virtualizer.retire(t1)
        with pytest.raises(StaleGenerationFault):
            virtualizer.pcu.execute_gate(
                GateKind.HCCALL, virtualizer.gate_id_of(p2),
                virtualizer.gate_address_of(p2), None)

    def test_rebound_slot_still_faults_the_stale_core(self, virtualizer):
        """The ABA case: the slot has a *new* live tenant, but the core
        entered under the old generation — it must never be served the
        new tenant's verdicts."""
        old, physical = spawn_bound(virtualizer, "alu")
        enter(virtualizer, physical)
        virtualizer.retire(old)
        new, rebound = spawn_bound(virtualizer, "alu", "store")
        assert rebound == physical
        with pytest.raises(StaleGenerationFault):
            virtualizer.pcu.check(AccessInfo(0))

    def test_reentering_after_recycle_is_clean(self, virtualizer):
        old, physical = spawn_bound(virtualizer, "alu")
        virtualizer.retire(old)
        new, rebound = spawn_bound(virtualizer, "alu")
        assert rebound == physical
        enter(virtualizer, physical)  # latches the bumped generation
        virtualizer.pcu.check(AccessInfo(0))


class TestTransactionality:
    def test_aborted_bind_returns_slot_to_free_list(self, virtualizer):
        logical = virtualizer.spawn(TenantManifest(instructions={"alu"}))
        fired = []

        def blow_up(physical):
            fired.append(physical)
            raise InjectedFault("store fault in the recycle window")

        virtualizer._recycle_window = blow_up
        with pytest.raises(InjectedFault):
            virtualizer.activate(logical)
        (physical,) = fired
        # Nothing leaked: the slot is free again, no binding recorded.
        assert virtualizer.free_slots[0] == physical
        assert physical not in virtualizer.slot_owner
        assert logical not in virtualizer.bindings
        # And the retry deterministically reuses the same slot.
        virtualizer._recycle_window = lambda physical: None
        assert virtualizer.activate(logical) == physical

    def test_refresh_slot_repairs_a_dropped_flush(self, virtualizer,
                                                  manager):
        logical, physical = spawn_bound(virtualizer, "alu")
        # A stale grant the tenant never asked for (dropped flush).
        manager.allow_instructions(physical, ["halt"])
        assert not virtualizer.slot_conforms(physical)
        virtualizer.refresh_slot(physical)
        assert virtualizer.slot_conforms(physical)
        assert manager.domains[physical].instructions == {"alu"}


class TestConstruction:
    def test_slot_budget_is_validated(self, manager):
        with pytest.raises(ConfigurationError):
            DomainVirtualizer(manager, max_slots=0)
        with pytest.raises(ConfigurationError):
            DomainVirtualizer(manager,
                              max_slots=manager.pcu.config.max_domains)

    def test_install_wires_pcu_and_manager(self, virtualizer, manager):
        assert manager.virtualizer is virtualizer
        assert manager.pcu.generation_table is virtualizer.generations
