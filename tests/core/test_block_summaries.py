"""Block-summary probes: the §3.18 coherence contract at the PCU.

Two halves, mirroring ``test_fast_path.py``.  The unit tests pin the
probe protocol: ``check_block_summary`` may only authorize a block when
N per-instruction checks would all pass with zero stall, and every
invalidation entry point (``invalidate_privileges`` wide and narrow,
``pflh`` flushes, gate switches, degraded mode, tenant slot recycling,
an armed contract tap, a shadowed ``check``) must make the next probe
refuse.  The hypothesis state machine then drives a block-capable PCU
and a ``block_summaries=False`` PCU through identical operation storms,
executing accepted blocks via probe + ``account_block`` on one side and
per-instruction checks on the other, and requires bit-identical
``PcuStats`` after every step.
"""

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import (
    AccessInfo,
    CacheId,
    CsrDescriptor,
    DomainManager,
    GateKind,
    IsaGridIsaMap,
    PcuConfig,
    PrivilegeCheckUnit,
    TrustedMemory,
)
from repro.core.errors import PrivilegeFault
from repro.core.pcu import (
    BLOCK_BYPASS,
    BLOCK_DOMAIN0,
    BLOCK_REFUSED,
    BLOCK_SILENT,
)
from repro.sim.blocks import BlockSummary, summarize_classes

CLASSES = ["alu", "load", "store", "csr", "sysop", "halt"]
CSRS = [
    CsrDescriptor("reserved", 0),
    CsrDescriptor("ctrl", 1, bitwise=True),
    CsrDescriptor("vbase", 2),
    CsrDescriptor("scratch", 3),
    CsrDescriptor("status", 4, bitwise=True),
    CsrDescriptor("counter", 5),
]


def build_pcu(**config_fields):
    isa_map = IsaGridIsaMap(
        "testarch",
        CLASSES,
        [CsrDescriptor(d.name, d.index, d.width, d.bitwise) for d in CSRS],
    )
    config = PcuConfig(name="block-summary-test", **config_fields)
    pcu = PrivilegeCheckUnit(isa_map, config, TrustedMemory(0x100000, 1 << 20))
    return isa_map, pcu, DomainManager(pcu)


def warm(isa_map, pcu, manager, *, classes=("alu", "load"), at=0x1000):
    """Create a domain, enter it, and warm the bypass register."""
    domain = manager.create_domain("kernel")
    manager.allow_instructions(domain.domain_id, list(classes))
    gate = manager.register_gate(at, at + 0x1000, domain.domain_id)
    pcu.execute_gate(GateKind.HCCALL, gate, at)
    pcu.check(AccessInfo(inst_class=isa_map.inst_class(classes[0])))
    assert pcu.verdict_plan() is not None
    return domain


def summary_of(isa_map, names, csrs=()):
    classes = [isa_map.inst_class(name) for name in names]
    return BlockSummary(summarize_classes(classes), tuple(csrs))


class TestBlockProbe:
    def test_warm_bypass_authorizes_covered_block(self):
        isa_map, pcu, manager = build_pcu()
        warm(isa_map, pcu, manager)
        summary = summary_of(isa_map, ["alu", "load"])
        assert pcu.check_block_summary(summary) == BLOCK_BYPASS
        assert pcu.block_stats.hits == 1

    def test_missing_class_bit_refuses(self):
        isa_map, pcu, manager = build_pcu()
        warm(isa_map, pcu, manager, classes=("alu",))
        summary = summary_of(isa_map, ["alu", "store"])
        assert pcu.check_block_summary(summary) == BLOCK_REFUSED
        assert pcu.block_stats.refusals == 1

    def test_csr_touches_always_refuse(self):
        # Blocks with CSR members are never formed; a summary carrying
        # them must refuse rather than skip the read/write/mask checks.
        isa_map, pcu, manager = build_pcu()
        warm(isa_map, pcu, manager, classes=("alu", "csr"))
        summary = summary_of(isa_map, ["alu"], csrs=(1,))
        assert pcu.check_block_summary(summary) == BLOCK_REFUSED

    def test_domain0_authorizes_without_bypass(self):
        isa_map, pcu, _ = build_pcu()
        summary = summary_of(isa_map, ["alu", "sysop", "halt"])
        assert pcu.check_block_summary(summary) == BLOCK_DOMAIN0

    def test_disabled_pcu_is_silent(self):
        isa_map, pcu, _ = build_pcu()
        pcu.enabled = False
        assert (pcu.check_block_summary(summary_of(isa_map, ["alu"]))
                == BLOCK_SILENT)

    def test_cold_bypass_refuses(self):
        isa_map, pcu, manager = build_pcu()
        domain = manager.create_domain("kernel")
        manager.allow_instructions(domain.domain_id, ["alu"])
        gate = manager.register_gate(0x1000, 0x2000, domain.domain_id)
        pcu.execute_gate(GateKind.HCCALL, gate, 0x1000)
        # No warm check yet: the bypass register is cold.
        summary = summary_of(isa_map, ["alu"])
        assert pcu.check_block_summary(summary) == BLOCK_REFUSED
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        assert pcu.check_block_summary(summary) == BLOCK_BYPASS

    def test_probe_never_mutates_pcu_stats(self):
        isa_map, pcu, manager = build_pcu()
        warm(isa_map, pcu, manager)
        before = pcu.stats.as_dict()
        pcu.check_block_summary(summary_of(isa_map, ["alu"]))
        pcu.check_block_summary(summary_of(isa_map, ["halt"]))
        assert pcu.stats.as_dict() == before

    def test_config_escape_hatch_refuses(self):
        isa_map, pcu, manager = build_pcu(block_summaries=False)
        assert not pcu._block_capable
        warm(isa_map, pcu, manager)
        assert (pcu.check_block_summary(summary_of(isa_map, ["alu"]))
                == BLOCK_REFUSED)

    @pytest.mark.parametrize("fields", [
        {"fast_path": False},
        {"bypass_enabled": False},
        {"draco_entries": 8},
    ])
    def test_fast_path_ineligibility_forbids_blocks(self, fields):
        # Every condition that forbids the compiled verdict plan
        # forbids block summaries too.
        isa_map, pcu, manager = build_pcu(**fields)
        assert not pcu._block_capable
        domain = manager.create_domain("kernel")
        manager.allow_instructions(domain.domain_id, ["alu"])
        gate = manager.register_gate(0x1000, 0x2000, domain.domain_id)
        pcu.execute_gate(GateKind.HCCALL, gate, 0x1000)
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        assert (pcu.check_block_summary(summary_of(isa_map, ["alu"]))
                == BLOCK_REFUSED)

    def test_armed_tap_refuses(self):
        # Per-check contract events must keep their per-instruction
        # cadence; any tap object suffices for the probe's None test.
        isa_map, pcu, manager = build_pcu()
        warm(isa_map, pcu, manager)
        summary = summary_of(isa_map, ["alu"])
        pcu._tap = object()
        assert pcu.check_block_summary(summary) == BLOCK_REFUSED
        pcu._tap = None
        assert pcu.check_block_summary(summary) == BLOCK_BYPASS

    def test_shadowed_check_refuses(self):
        # The machine fault campaigns' lockstep monitor shadows
        # ``check`` on the instance; it must see every per-instruction
        # call, so blocks may not compress them away.
        isa_map, pcu, manager = build_pcu()
        warm(isa_map, pcu, manager)
        summary = summary_of(isa_map, ["alu"])
        original = pcu.check
        pcu.check = lambda access: original(access)
        assert pcu.check_block_summary(summary) == BLOCK_REFUSED
        del pcu.check
        assert pcu.check_block_summary(summary) == BLOCK_BYPASS


class TestBlockInvalidationEntryPoints:
    """Satellite audit regressions: every privilege-invalidation entry
    point must make the next probe refuse (or serve a freshly reloaded
    bypass), never authorize a block against stale state."""

    def setup_probe(self, **config_fields):
        isa_map, pcu, manager = build_pcu(**config_fields)
        domain = warm(isa_map, pcu, manager)
        summary = summary_of(isa_map, ["alu", "load"])
        assert pcu.check_block_summary(summary) == BLOCK_BYPASS
        return isa_map, pcu, manager, domain, summary

    def test_wide_invalidate_refuses(self):
        _, pcu, _, _, summary = self.setup_probe()
        pcu.invalidate_privileges()
        assert pcu.check_block_summary(summary) == BLOCK_REFUSED

    def test_domain_scoped_invalidate_refuses(self):
        _, pcu, _, domain, summary = self.setup_probe()
        pcu.invalidate_privileges(domain=domain.domain_id)
        assert pcu.check_block_summary(summary) == BLOCK_REFUSED

    def test_other_domain_invalidate_keeps_authorizing(self):
        _, pcu, _, domain, summary = self.setup_probe()
        pcu.invalidate_privileges(domain=domain.domain_id + 1)
        assert pcu.check_block_summary(summary) == BLOCK_BYPASS

    def test_csr_narrow_reg_sweep_keeps_authorizing(self):
        # Register words are never summarized (blocks carry no CSR
        # members), so a reg-only narrow sweep has nothing to refuse.
        isa_map, pcu, _, domain, summary = self.setup_probe()
        pcu.invalidate_privileges(domain=domain.domain_id,
                                  csr=isa_map.csr_index("vbase"), inst=False)
        assert pcu.check_block_summary(summary) == BLOCK_BYPASS

    def test_flush_all_refuses(self):
        _, pcu, _, _, summary = self.setup_probe()
        pcu.flush(CacheId.ALL)
        assert pcu.check_block_summary(summary) == BLOCK_REFUSED

    def test_flush_inst_bitmap_refuses(self):
        _, pcu, _, _, summary = self.setup_probe()
        pcu.flush(CacheId.INST_BITMAP)
        assert pcu.check_block_summary(summary) == BLOCK_REFUSED

    def test_flush_reg_bitmap_keeps_authorizing(self):
        _, pcu, _, _, summary = self.setup_probe()
        pcu.flush(CacheId.REG_BITMAP)
        assert pcu.check_block_summary(summary) == BLOCK_BYPASS

    def test_gate_switch_refuses_until_rewarmed(self):
        isa_map, pcu, manager, _, summary = self.setup_probe()
        other = manager.create_domain("service")
        manager.allow_instructions(other.domain_id, ["alu", "load"])
        gate = manager.register_gate(0x5000, 0x6000, other.domain_id)
        pcu.execute_gate(GateKind.HCCALL, gate, 0x5000)
        assert pcu.check_block_summary(summary) == BLOCK_REFUSED
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        assert pcu.check_block_summary(summary) == BLOCK_BYPASS

    def test_degraded_mode_refuses_until_rewarmed(self):
        isa_map, pcu, _, _, summary = self.setup_probe()
        pcu.enter_degraded_mode()
        assert pcu.check_block_summary(summary) == BLOCK_REFUSED
        pcu.exit_degraded_mode()
        # Exit leaves the bypass cold: still refused until a warm check.
        assert pcu.check_block_summary(summary) == BLOCK_REFUSED
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        assert pcu.check_block_summary(summary) == BLOCK_BYPASS

    def test_recycled_slot_generation_refuses(self):
        # Tenant churn: the virtualizer bumps the slot's generation in
        # the shared table; the PCU's latched entry generation is now
        # stale, and the per-instruction path would raise
        # StaleGenerationFault — so the probe must refuse.
        _, pcu, _, domain, summary = self.setup_probe()
        pcu.generation_table = {domain.domain_id: pcu._entry_generation}
        assert pcu.check_block_summary(summary) == BLOCK_BYPASS
        pcu.generation_table[domain.domain_id] += 1
        assert pcu.check_block_summary(summary) == BLOCK_REFUSED


class TestBlockAccounting:
    def test_bypass_mode_replays_checks_and_hits(self):
        isa_map, pcu, manager = build_pcu()
        warm(isa_map, pcu, manager)
        before = pcu.stats.as_dict()
        pcu.account_block(BLOCK_BYPASS, 7)
        after = pcu.stats.as_dict()
        assert after.pop("inst_checks") == before.pop("inst_checks") + 7
        assert after.pop("bypass_hits") == before.pop("bypass_hits") + 7
        assert after == before
        assert pcu.block_stats.insts == 7

    def test_domain0_mode_replays_checks_only(self):
        isa_map, pcu, _ = build_pcu()
        before = pcu.stats.as_dict()
        pcu.account_block(BLOCK_DOMAIN0, 5)
        after = pcu.stats.as_dict()
        assert after.pop("inst_checks") == before.pop("inst_checks") + 5
        assert after == before

    def test_silent_mode_touches_nothing_but_block_stats(self):
        isa_map, pcu, _ = build_pcu()
        before = pcu.stats.as_dict()
        pcu.account_block(BLOCK_SILENT, 9)
        assert pcu.stats.as_dict() == before
        assert pcu.block_stats.insts == 9


# ----------------------------------------------------------------------
# Hypothesis lockstep: block-capable PCU vs per-instruction PCU under
# invalidation storms.
# ----------------------------------------------------------------------
CLASS_INDEX = st.integers(min_value=0, max_value=len(CLASSES) - 1)


class BlockSummaryLockstep(RuleBasedStateMachine):
    """Mirror every privilege operation onto both PCUs.  Straight-line
    "blocks" retire on the block side via one probe plus
    ``account_block`` whenever the probe authorizes them, and via
    per-instruction checks on the reference side; any divergence in
    authorization soundness (a member check faulting or stalling after
    an accepted probe) or in ``PcuStats`` is a §3.18 coherence bug."""

    def __init__(self):
        super().__init__()
        self.isa_map, self.blocky, self.blocky_manager = build_pcu()
        _, self.plain, self.plain_manager = build_pcu(block_summaries=False)
        assert self.blocky._block_capable and not self.plain._block_capable
        self.domains = []
        self.gates = {}
        self.next_gate_pc = 0x1000

    def check_both(self, **fields):
        outcomes = []
        for pcu in (self.blocky, self.plain):
            try:
                outcomes.append(("ok", pcu.check(AccessInfo(**fields))))
            except PrivilegeFault as fault:
                outcomes.append(("fault", type(fault).__name__))
        assert outcomes[0] == outcomes[1], (
            "block/plain diverged on %r: %r" % (fields, outcomes)
        )
        return outcomes[0]

    # -- configuration plane -------------------------------------------
    @rule()
    def create_domain(self):
        if len(self.domains) >= 4:
            return
        name = "dom%d" % len(self.domains)
        blocky_domain = self.blocky_manager.create_domain(name)
        plain_domain = self.plain_manager.create_domain(name)
        assert blocky_domain.domain_id == plain_domain.domain_id
        domain_id = blocky_domain.domain_id
        at = self.next_gate_pc
        self.next_gate_pc += 0x100
        self.gates[domain_id] = (
            self.blocky_manager.register_gate(at, at + 8, domain_id),
            self.plain_manager.register_gate(at, at + 8, domain_id),
            at,
        )
        self.domains.append(domain_id)

    @rule(pick=st.randoms(use_true_random=False),
          classes=st.sets(CLASS_INDEX, min_size=1, max_size=4))
    def allow_instructions(self, pick, classes):
        if not self.domains:
            return
        domain_id = pick.choice(self.domains)
        names = [CLASSES[index] for index in sorted(classes)]
        self.blocky_manager.allow_instructions(domain_id, names)
        self.plain_manager.allow_instructions(domain_id, names)

    # -- control plane -------------------------------------------------
    @rule(pick=st.randoms(use_true_random=False))
    def enter_domain(self, pick):
        if not self.domains:
            return
        domain_id = pick.choice(self.domains)
        blocky_gate, plain_gate, at = self.gates[domain_id]
        outcomes = []
        for pcu, gate in ((self.blocky, blocky_gate),
                          (self.plain, plain_gate)):
            try:
                outcomes.append(("ok", pcu.execute_gate(GateKind.HCCALL,
                                                        gate, at)))
            except PrivilegeFault as fault:
                outcomes.append(("fault", type(fault).__name__))
        assert outcomes[0] == outcomes[1]

    @rule(cache_id=st.sampled_from(list(CacheId)))
    def flush(self, cache_id):
        self.blocky.flush(cache_id)
        self.plain.flush(cache_id)

    @rule(pick=st.randoms(use_true_random=False), wide=st.booleans())
    def invalidate(self, pick, wide):
        if wide or not self.domains:
            self.blocky.invalidate_privileges()
            self.plain.invalidate_privileges()
        else:
            domain_id = pick.choice(self.domains)
            self.blocky.invalidate_privileges(domain=domain_id)
            self.plain.invalidate_privileges(domain=domain_id)

    @rule(enter=st.booleans())
    def degraded_mode(self, enter):
        for pcu in (self.blocky, self.plain):
            if enter:
                pcu.enter_degraded_mode()
            else:
                pcu.exit_degraded_mode()

    @rule(pick=st.randoms(use_true_random=False), bump=st.integers(1, 3))
    def recycle_slot(self, pick, bump):
        # Tenant churn: bump a slot's generation in the shared table on
        # both worlds (the virtualizer's invalidation, minus the object).
        if not self.domains:
            return
        domain_id = pick.choice(self.domains)
        for pcu in (self.blocky, self.plain):
            if pcu.generation_table is None:
                pcu.generation_table = {}
            table = pcu.generation_table
            table[domain_id] = table.get(domain_id, 0) + bump

    @rule(pick=st.randoms(use_true_random=False))
    def repair_slot(self, pick):
        # The virtualizer re-binds the tenant: table entry back to the
        # latched entry generation, ending the stale-slot episode.
        if not self.domains:
            return
        domain_id = pick.choice(self.domains)
        for pcu in (self.blocky, self.plain):
            if pcu.generation_table is not None:
                pcu.generation_table[domain_id] = pcu._entry_generation

    # -- data plane ----------------------------------------------------
    @rule(inst=CLASS_INDEX)
    def check_instruction(self, inst):
        self.check_both(inst_class=inst, address=0x4000 + inst)

    @rule(members=st.lists(CLASS_INDEX, min_size=3, max_size=8))
    def run_block(self, members):
        """One straight-line block of ``members``: probe + account on
        the block side, per-instruction checks on the reference side."""
        names = [CLASSES[index] for index in members]
        summary = summary_of(self.isa_map, names)
        mode = self.blocky.check_block_summary(summary)
        assert self.plain.check_block_summary(summary) == BLOCK_REFUSED
        if mode != BLOCK_REFUSED:
            # The probe's soundness claim: every member check on the
            # reference side must pass with zero stall.
            for index, inst in enumerate(members):
                outcome = ("ok", self.plain.check(
                    AccessInfo(inst_class=inst, address=0x8000 + index)))
                assert outcome == ("ok", 0), (
                    "probe authorized mode %d but member %r cost %r"
                    % (mode, CLASSES[inst], outcome)
                )
            self.blocky.account_block(mode, len(members))
        else:
            # Fallback semantics: both worlds run the reference path,
            # stopping at the first fault exactly like the executors.
            for index, inst in enumerate(members):
                outcome = self.check_both(
                    inst_class=inst, address=0x8000 + index)
                if outcome[0] == "fault":
                    break

    # -- invariants ----------------------------------------------------
    @invariant()
    def stats_identical(self):
        assert self.blocky.stats == self.plain.stats

    @invariant()
    def registers_identical(self):
        assert self.blocky.registers.domain == self.plain.registers.domain


BlockSummaryLockstep.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestBlockSummaryLockstep = BlockSummaryLockstep.TestCase
