"""The Switching Gate Table: registration, refill, gate-id semantics."""

import pytest

from repro.core import (
    ConfigurationError,
    GateFault,
    SwitchingGateTable,
    TrustedMemory,
)


@pytest.fixture
def sgt():
    memory = TrustedMemory(base=0x100000, size=1 << 20)
    return SwitchingGateTable(memory, max_gates=8)


class TestRegistration:
    def test_sequential_ids(self, sgt):
        a = sgt.register(0x1000, 0x2000, 1)
        b = sgt.register(0x1100, 0x2100, 2)
        assert (a.gate_id, b.gate_id) == (0, 1)

    def test_explicit_id(self, sgt):
        entry = sgt.register(0x1000, 0x2000, 1, gate_id=5)
        assert entry.gate_id == 5
        # the allocator skips past explicitly-used slots
        assert sgt.register(0x1200, 0x2200, 1).gate_id == 6

    def test_gate_nr_tracks_allocations(self, sgt):
        sgt.register(0x1000, 0x2000, 1)
        sgt.register(0x1100, 0x2100, 1)
        assert sgt.gate_nr == 2

    def test_out_of_slots(self, sgt):
        for i in range(8):
            sgt.register(0x1000 + i, 0x2000, 1)
        with pytest.raises(ConfigurationError):
            sgt.register(0x9000, 0x2000, 1)

    def test_entry_words_in_trusted_memory(self, sgt):
        entry = sgt.register(0x1000, 0x2000, 3)
        address = sgt.entry_address(entry.gate_id)
        assert sgt.memory.load_word(address) == 0x1000
        assert sgt.memory.load_word(address + 8) == 0x2000
        assert sgt.memory.load_word(address + 16) == 3
        assert sgt.memory.load_word(address + 24) == 1  # valid


class TestReadEntry:
    def test_roundtrip(self, sgt):
        sgt.register(0x1000, 0x2000, 3)
        entry = sgt.read_entry(0)
        assert entry.gate_address == 0x1000
        assert entry.destination_address == 0x2000
        assert entry.destination_domain == 3

    def test_unregistered_gate_faults(self, sgt):
        """Property (iv): unregistered gates can never be executed."""
        with pytest.raises(GateFault):
            sgt.read_entry(0)

    def test_out_of_range_gate_id_faults(self, sgt):
        with pytest.raises(GateFault):
            sgt.read_entry(100)
        with pytest.raises(GateFault):
            sgt.read_entry(-1)

    def test_unregister_invalidates(self, sgt):
        sgt.register(0x1000, 0x2000, 3)
        sgt.unregister(0)
        with pytest.raises(GateFault):
            sgt.read_entry(0)

    def test_matches_call_site(self, sgt):
        """Property (i): a gate is only callable at its frozen address."""
        sgt.register(0x1000, 0x2000, 3)
        entry = sgt.read_entry(0)
        assert entry.matches_call_site(0x1000)
        assert not entry.matches_call_site(0x1004)


class TestDuplicateRegistration:
    def test_reregistration_replaces_the_triple(self, sgt):
        """Registering the same slot twice overwrites the frozen triple —
        the slot-reuse idiom for reloaded modules."""
        sgt.register(0x1000, 0x2000, 1, gate_id=0)
        sgt.register(0x3000, 0x4000, 2, gate_id=0)
        entry = sgt.read_entry(0)
        assert entry.gate_address == 0x3000
        assert entry.destination_address == 0x4000
        assert entry.destination_domain == 2
        assert sgt.gate_nr == 1  # still one slot handed out

    def test_reregistration_revokes_old_call_site(self, sgt):
        sgt.register(0x1000, 0x2000, 1, gate_id=0)
        sgt.register(0x3000, 0x4000, 2, gate_id=0)
        assert not sgt.read_entry(0).matches_call_site(0x1000)

    def test_unregister_then_reuse_slot(self, sgt):
        sgt.register(0x1000, 0x2000, 1, gate_id=0)
        sgt.unregister(0)
        with pytest.raises(GateFault):
            sgt.read_entry(0)
        sgt.register(0x5000, 0x6000, 3, gate_id=0)
        assert sgt.read_entry(0).destination_domain == 3


class TestGateEdgeCasesThroughPcu:
    """Exact fault subclasses for the hostile gate sequences the fuzzer
    replays: wrong call sites, dead gate ids, empty-stack returns."""

    @pytest.fixture
    def guest(self, pcu, manager):
        manager.allocate_trusted_stack(frames=4)
        return manager.create_domain("guest")

    def test_reregistered_gate_switches_to_new_destination(
        self, pcu, manager, guest
    ):
        from repro.core import GateKind

        other = manager.create_domain("other")
        gate = manager.register_gate(0x1000, 0x2000, guest.domain_id)
        pcu.execute_gate(GateKind.HCCALL, gate, 0x1000)  # warm the SGT cache
        manager.register_gate(0x7000, 0x8000, other.domain_id, gate_id=gate)
        # the stale cached entry must not serve the old call site...
        with pytest.raises(GateFault) as excinfo:
            pcu.execute_gate(GateKind.HCCALL, gate, 0x1000)
        assert type(excinfo.value) is GateFault
        # ...and the new triple is live immediately
        target, _ = pcu.execute_gate(GateKind.HCCALL, gate, 0x7000)
        assert target == 0x8000
        assert pcu.current_domain == other.domain_id

    def test_hccall_at_non_registered_address_faults(self, pcu, manager, guest):
        from repro.core import GateKind

        gate = manager.register_gate(0x1000, 0x2000, guest.domain_id)
        with pytest.raises(GateFault) as excinfo:
            pcu.execute_gate(GateKind.HCCALL, gate, 0x1008)
        assert type(excinfo.value) is GateFault
        assert excinfo.value.domain == 0
        assert pcu.current_domain == 0  # the switch never happened

    def test_hccall_on_unregistered_id_faults(self, pcu, manager, guest):
        from repro.core import GateKind

        with pytest.raises(GateFault) as excinfo:
            pcu.execute_gate(GateKind.HCCALL, 6, 0x9000)
        assert type(excinfo.value) is GateFault

    def test_hcrets_with_empty_trusted_stack_faults(self, pcu, manager, guest):
        from repro.core import GateKind, TrustedStackFault

        gate = manager.register_gate(0x1000, 0x2000, guest.domain_id)
        pcu.execute_gate(GateKind.HCCALL, gate, 0x1000)  # hccall: no frame
        with pytest.raises(TrustedStackFault) as excinfo:
            pcu.execute_gate(GateKind.HCRETS, 0, 0x2000)
        assert type(excinfo.value) is TrustedStackFault
        assert pcu.current_domain == guest.domain_id  # still in the callee
