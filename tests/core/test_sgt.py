"""The Switching Gate Table: registration, refill, gate-id semantics."""

import pytest

from repro.core import (
    ConfigurationError,
    GateFault,
    SwitchingGateTable,
    TrustedMemory,
)


@pytest.fixture
def sgt():
    memory = TrustedMemory(base=0x100000, size=1 << 20)
    return SwitchingGateTable(memory, max_gates=8)


class TestRegistration:
    def test_sequential_ids(self, sgt):
        a = sgt.register(0x1000, 0x2000, 1)
        b = sgt.register(0x1100, 0x2100, 2)
        assert (a.gate_id, b.gate_id) == (0, 1)

    def test_explicit_id(self, sgt):
        entry = sgt.register(0x1000, 0x2000, 1, gate_id=5)
        assert entry.gate_id == 5
        # the allocator skips past explicitly-used slots
        assert sgt.register(0x1200, 0x2200, 1).gate_id == 6

    def test_gate_nr_tracks_allocations(self, sgt):
        sgt.register(0x1000, 0x2000, 1)
        sgt.register(0x1100, 0x2100, 1)
        assert sgt.gate_nr == 2

    def test_out_of_slots(self, sgt):
        for i in range(8):
            sgt.register(0x1000 + i, 0x2000, 1)
        with pytest.raises(ConfigurationError):
            sgt.register(0x9000, 0x2000, 1)

    def test_entry_words_in_trusted_memory(self, sgt):
        entry = sgt.register(0x1000, 0x2000, 3)
        address = sgt.entry_address(entry.gate_id)
        assert sgt.memory.load_word(address) == 0x1000
        assert sgt.memory.load_word(address + 8) == 0x2000
        assert sgt.memory.load_word(address + 16) == 3
        assert sgt.memory.load_word(address + 24) == 1  # valid


class TestReadEntry:
    def test_roundtrip(self, sgt):
        sgt.register(0x1000, 0x2000, 3)
        entry = sgt.read_entry(0)
        assert entry.gate_address == 0x1000
        assert entry.destination_address == 0x2000
        assert entry.destination_domain == 3

    def test_unregistered_gate_faults(self, sgt):
        """Property (iv): unregistered gates can never be executed."""
        with pytest.raises(GateFault):
            sgt.read_entry(0)

    def test_out_of_range_gate_id_faults(self, sgt):
        with pytest.raises(GateFault):
            sgt.read_entry(100)
        with pytest.raises(GateFault):
            sgt.read_entry(-1)

    def test_unregister_invalidates(self, sgt):
        sgt.register(0x1000, 0x2000, 3)
        sgt.unregister(0)
        with pytest.raises(GateFault):
            sgt.read_entry(0)

    def test_matches_call_site(self, sgt):
        """Property (i): a gate is only callable at its frozen address."""
        sgt.register(0x1000, 0x2000, 3)
        entry = sgt.read_entry(0)
        assert entry.matches_call_site(0x1000)
        assert not entry.matches_call_site(0x1004)
