"""Section 8 PCU extensions: Draco-style cache, flush-on-switch,
revocation coherence."""

import pytest

from repro.core import (
    AccessInfo,
    BitMaskViolationFault,
    DomainManager,
    GateKind,
    InstructionPrivilegeFault,
    PcuConfig,
    PrivilegeCheckUnit,
    RegisterWriteFault,
    TrustedMemory,
)


def make_pcu(isa_map, **config_kwargs):
    pcu = PrivilegeCheckUnit(
        isa_map, PcuConfig(**config_kwargs), TrustedMemory(0x100000, 1 << 20)
    )
    manager = DomainManager(pcu)
    domain = manager.create_domain("kernel")
    manager.allow_instructions(domain.domain_id, ["alu", "csr"])
    manager.grant_register(domain.domain_id, "vbase", read=True)
    gate = manager.register_gate(0x1000, 0x2000, domain.domain_id)
    pcu.execute_gate(GateKind.HCCALL, gate, 0x1000)
    return pcu, manager, domain


class TestDracoCache:
    def test_disabled_by_default(self, isa_map):
        pcu, _, _ = make_pcu(isa_map)
        assert pcu.draco is None

    def test_repeated_legal_access_hits(self, isa_map):
        pcu, _, _ = make_pcu(isa_map, draco_entries=16)
        access = AccessInfo(inst_class=isa_map.inst_class("alu"))
        pcu.check(access)
        pcu.check(access)
        pcu.check(access)
        assert pcu.stats.draco_hits == 2

    def test_csr_tuples_cached_by_value(self, isa_map):
        pcu, _, _ = make_pcu(isa_map, draco_entries=16)
        read = AccessInfo(
            inst_class=isa_map.inst_class("csr"),
            csr=isa_map.csr_index("vbase"), csr_read=True,
        )
        pcu.check(read)
        pcu.check(read)
        assert pcu.stats.draco_hits == 1

    def test_illegal_access_never_cached(self, isa_map):
        pcu, _, _ = make_pcu(isa_map, draco_entries=16)
        bad = AccessInfo(inst_class=isa_map.inst_class("sysop"))
        for _ in range(3):
            with pytest.raises(InstructionPrivilegeFault):
                pcu.check(bad)
        assert pcu.stats.draco_hits == 0

    def test_distinct_values_are_distinct_entries(self, isa_map):
        """Legality depends on the written value for bitwise CSRs, so
        the tuple key must include it."""
        pcu, manager, domain = make_pcu(isa_map, draco_entries=16)
        manager.grant_register_bits(domain.domain_id, "ctrl", 0b10)
        good = AccessInfo(
            inst_class=isa_map.inst_class("csr"),
            csr=isa_map.csr_index("ctrl"), csr_write=True,
            write_value=0b10, old_value=0,
        )
        bad = AccessInfo(
            inst_class=isa_map.inst_class("csr"),
            csr=isa_map.csr_index("ctrl"), csr_write=True,
            write_value=0b01, old_value=0,
        )
        pcu.check(good)
        pcu.check(good)
        assert pcu.stats.draco_hits == 1
        with pytest.raises(BitMaskViolationFault):
            pcu.check(bad)

    def test_flush_all_clears_draco(self, isa_map):
        pcu, _, _ = make_pcu(isa_map, draco_entries=16)
        access = AccessInfo(inst_class=isa_map.inst_class("alu"))
        pcu.check(access)
        pcu.flush()
        pcu.check(access)
        assert pcu.stats.draco_hits == 0


class TestFlushOnSwitch:
    def test_caches_cold_after_every_switch(self, isa_map):
        pcu, manager, domain = make_pcu(isa_map, flush_on_switch=True)
        access = AccessInfo(inst_class=isa_map.inst_class("alu"))
        pcu.check(access)
        other = manager.create_domain("other")
        manager.allow_instructions(other.domain_id, ["alu"])
        gate = manager.register_gate(0x3000, 0x4000, other.domain_id)
        pcu.execute_gate(GateKind.HCCALL, gate, 0x3000)
        # the first check after the switch must miss everywhere
        flushes_before = pcu.stats.inst_cache.flushes
        stall = pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        assert stall > 0
        assert flushes_before >= 1

    def test_default_keeps_caches_warm_across_switches(self, isa_map):
        pcu, manager, domain = make_pcu(isa_map)
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        # round trip: out and back
        other = manager.create_domain("other")
        manager.allow_instructions(other.domain_id, ["alu"])
        gate_out = manager.register_gate(0x3000, 0x4000, other.domain_id)
        gate_back = manager.register_gate(0x5000, 0x6000, domain.domain_id)
        pcu.execute_gate(GateKind.HCCALL, gate_out, 0x3000)
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        pcu.execute_gate(GateKind.HCCALL, gate_back, 0x5000)
        stall = pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        assert stall == 0  # domain-tagged entries survived the switches


class TestRevocationCoherence:
    def test_revoked_register_faults_despite_warm_caches(self, isa_map):
        pcu, manager, domain = make_pcu(isa_map, draco_entries=16)
        read = AccessInfo(
            inst_class=isa_map.inst_class("csr"),
            csr=isa_map.csr_index("vbase"), csr_read=True,
        )
        pcu.check(read)
        pcu.check(read)  # now draco- and reg-cache-resident
        manager.revoke_register(domain.domain_id, "vbase", read=True)
        from repro.core import RegisterReadFault

        with pytest.raises(RegisterReadFault):
            pcu.check(read)

    def test_denied_instruction_faults_despite_bypass(self, isa_map):
        pcu, manager, domain = make_pcu(isa_map)
        access = AccessInfo(inst_class=isa_map.inst_class("alu"))
        pcu.check(access)  # bypass register loaded
        manager.deny_instruction(domain.domain_id, "alu")
        with pytest.raises(InstructionPrivilegeFault):
            pcu.check(access)
