"""Domain-0 runtime: registration, grants, policies."""

import pytest

from repro.core import (
    ConfigurationError,
    RegistrationRejected,
    DomainManager,
    exclusive_writers_policy,
)


class TestDomainRegistration:
    def test_ids_are_sequential(self, manager):
        a = manager.create_domain()
        b = manager.create_domain()
        assert (a.domain_id, b.domain_id) == (1, 2)

    def test_domain0_preexists(self, manager):
        assert manager.domain_id("domain-0") == 0

    def test_named_lookup(self, manager):
        domain = manager.create_domain("vm")
        assert manager.domain_id("vm") == domain.domain_id

    def test_duplicate_name_rejected(self, manager):
        manager.create_domain("vm")
        with pytest.raises(ConfigurationError):
            manager.create_domain("vm")

    def test_unknown_name(self, manager):
        with pytest.raises(ConfigurationError):
            manager.domain_id("nope")

    def test_domain_nr_register_updated(self, manager):
        manager.create_domain()
        assert manager.pcu.registers.domain_nr == 2

    def test_new_domains_start_deprived(self, manager, isa_map):
        domain = manager.create_domain("empty")
        for i in range(isa_map.n_inst_classes):
            word = manager.pcu.hpt.read_inst_word(domain.domain_id, 0)
            assert word == 0


class TestGrants:
    def test_instruction_grants_tracked(self, manager):
        domain = manager.create_domain("kernel")
        manager.allow_instructions(domain.domain_id, ["alu", "load"])
        assert domain.instructions == {"alu", "load"}

    def test_unknown_class_rejected(self, manager):
        domain = manager.create_domain("kernel")
        with pytest.raises(ConfigurationError):
            manager.allow_instructions(domain.domain_id, ["warp-drive"])

    def test_deny_instruction(self, manager):
        domain = manager.create_domain("kernel")
        manager.allow_instructions(domain.domain_id, ["alu"])
        manager.deny_instruction(domain.domain_id, "alu")
        assert "alu" not in domain.instructions
        assert manager.pcu.hpt.read_inst_word(domain.domain_id, 0) == 0

    def test_register_grant_sets_bits(self, manager, isa_map):
        domain = manager.create_domain("kernel")
        manager.grant_register(domain.domain_id, "vbase", read=True, write=True)
        word = manager.pcu.hpt.read_reg_word(domain.domain_id, 0)
        vbase = isa_map.csr_index("vbase")
        assert word >> (2 * vbase) & 0b11 == 0b11

    def test_full_write_grant_on_bitwise_csr_opens_mask(self, manager, isa_map):
        domain = manager.create_domain("kernel")
        manager.grant_register(domain.domain_id, "ctrl", write=True)
        slot = isa_map.mask_slot(isa_map.csr_index("ctrl"))
        assert manager.pcu.hpt.read_mask(domain.domain_id, slot) == (1 << 64) - 1

    def test_bit_grant_opens_only_those_bits(self, manager, isa_map):
        domain = manager.create_domain("kernel")
        manager.grant_register_bits(domain.domain_id, "ctrl", 0b110)
        slot = isa_map.mask_slot(isa_map.csr_index("ctrl"))
        assert manager.pcu.hpt.read_mask(domain.domain_id, slot) == 0b110

    def test_bit_grant_on_plain_csr_rejected(self, manager):
        domain = manager.create_domain("kernel")
        with pytest.raises(ConfigurationError):
            manager.grant_register_bits(domain.domain_id, "vbase", 0b1)

    def test_revoke_clears_mask(self, manager, isa_map):
        domain = manager.create_domain("kernel")
        manager.grant_register_bits(domain.domain_id, "ctrl", 0b110)
        manager.revoke_register(domain.domain_id, "ctrl", write=True)
        slot = isa_map.mask_slot(isa_map.csr_index("ctrl"))
        assert manager.pcu.hpt.read_mask(domain.domain_id, slot) == 0
        assert "ctrl" not in domain.writable_csrs

    def test_unknown_domain_rejected(self, manager):
        with pytest.raises(ConfigurationError):
            manager.grant_register(42, "vbase", read=True)


class TestGateManagement:
    def test_gate_ids_sequential(self, manager):
        domain = manager.create_domain("kernel")
        a = manager.register_gate(0x1000, 0x2000, domain.domain_id)
        b = manager.register_gate(0x1100, 0x2100, domain.domain_id)
        assert (a, b) == (0, 1)

    def test_gate_to_unknown_domain_rejected(self, manager):
        with pytest.raises(ConfigurationError):
            manager.register_gate(0x1000, 0x2000, 99)

    def test_gate_nr_register(self, manager):
        domain = manager.create_domain("kernel")
        manager.register_gate(0x1000, 0x2000, domain.domain_id)
        assert manager.pcu.registers.gate_nr == 1

    def test_unregister_gate(self, manager):
        domain = manager.create_domain("kernel")
        gate = manager.register_gate(0x1000, 0x2000, domain.domain_id)
        manager.unregister_gate(gate)
        assert gate not in manager.gates


class TestPolicies:
    def test_exclusive_writers_allows_disjoint(self, pcu):
        manager = DomainManager(pcu, policy=exclusive_writers_policy)
        a = manager.create_domain("a")
        b = manager.create_domain("b")
        manager.grant_register(a.domain_id, "vbase", write=True)
        manager.grant_register(b.domain_id, "scratch", write=True)

    def test_exclusive_writers_rejects_overlap(self, pcu):
        manager = DomainManager(pcu, policy=exclusive_writers_policy)
        a = manager.create_domain("a")
        b = manager.create_domain("b")
        manager.grant_register(a.domain_id, "vbase", write=True)
        with pytest.raises(RegistrationRejected):
            manager.grant_register(b.domain_id, "vbase", write=True)

    def test_describe_lists_all_domains(self, manager):
        manager.create_domain("a")
        manager.create_domain("b")
        summary = manager.describe()
        assert len(summary) == 3  # domain-0 + 2
        assert any("a(id=1)" in line for line in summary)
