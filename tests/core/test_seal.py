"""Sealable one-way privileges: the seal survives everything but teardown.

``DomainManager.seal_privileges`` drops a privilege below every verdict
path — the seal words in trusted memory are ANDed out of each HPT read,
so re-grants from domain-0, transactional rollback, trusted-stack
context switches and the kernel dispatch layer must all leave a sealed
privilege dead.  Only a full slot teardown (destroy / virtualizer
recycle) retires the overlay.
"""

import pytest

from repro.core import (
    AccessInfo,
    BitMaskViolationFault,
    ConfigurationError,
    DomainVirtualizer,
    GateKind,
    InjectedFault,
    InstructionPrivilegeFault,
    RegisterReadFault,
    RegisterWriteFault,
    TenantManifest,
)
from repro.faults import FaultyWordBacking

from .test_pcu import enter


@pytest.fixture
def faulty_backing(trusted_memory):
    backing = FaultyWordBacking(trusted_memory._backing)
    trusted_memory._backing = backing
    return backing


@pytest.fixture
def sealed_domain(manager):
    """A domain granted alu+halt+csr and vbase r/w, with halt and the
    vbase read side sealed afterwards."""
    domain = manager.create_domain("tenant")
    manager.allow_instructions(domain.domain_id, ["alu", "halt", "csr"])
    manager.grant_register(domain.domain_id, "vbase", read=True, write=True)
    manager.seal_privileges(domain.domain_id, instructions=["halt"],
                            csrs=["vbase"], read=True, write=False)
    return domain


def halt_access(isa_map):
    return AccessInfo(inst_class=isa_map.inst_class("halt"))


def vbase_read(isa_map):
    return AccessInfo(inst_class=isa_map.inst_class("csr"),
                      csr=isa_map.csr_index("vbase"), csr_read=True)


class TestOneWaySeal:
    def test_sealed_instruction_faults(self, pcu, manager, isa_map,
                                       sealed_domain):
        enter(pcu, manager, sealed_domain.domain_id)
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("alu")))
        with pytest.raises(InstructionPrivilegeFault):
            pcu.check(halt_access(isa_map))

    def test_regrant_does_not_unseal(self, pcu, manager, isa_map,
                                     sealed_domain):
        manager.allow_instructions(sealed_domain.domain_id, ["halt"])
        manager.grant_register(sealed_domain.domain_id, "vbase",
                               read=True, write=True)
        enter(pcu, manager, sealed_domain.domain_id)
        with pytest.raises(InstructionPrivilegeFault):
            pcu.check(halt_access(isa_map))
        with pytest.raises(RegisterReadFault):
            pcu.check(vbase_read(isa_map))

    def test_unsealed_side_still_granted(self, pcu, manager, isa_map,
                                         sealed_domain):
        """Only the read side of vbase was sealed; writes stay live."""
        enter(pcu, manager, sealed_domain.domain_id)
        pcu.check(AccessInfo(inst_class=isa_map.inst_class("csr"),
                             csr=isa_map.csr_index("vbase"), csr_write=True,
                             write_value=1, old_value=0))

    def test_seal_reported(self, manager, sealed_domain):
        overlay = manager.sealed_privileges(sealed_domain.domain_id)
        assert overlay["instructions"] == {"halt"}
        assert overlay["read_csrs"] == {"vbase"}
        assert overlay["write_csrs"] == set()

    def test_descriptor_keeps_grant_intent(self, manager, sealed_domain):
        """The descriptor records grants; the seal is an overlay."""
        assert "halt" in sealed_domain.instructions

    def test_domain0_cannot_be_sealed(self, manager):
        with pytest.raises(ConfigurationError):
            manager.seal_privileges(0, instructions=["alu"])

    def test_seal_beats_warm_cache(self, pcu, manager, isa_map):
        """A verdict cached pre-seal must not survive the seal."""
        domain = manager.create_domain("warm")
        manager.allow_instructions(domain.domain_id, ["halt"])
        enter(pcu, manager, domain.domain_id)
        pcu.check(halt_access(isa_map))  # warms bypass/caches
        manager.seal_privileges(domain.domain_id, instructions=["halt"])
        with pytest.raises(InstructionPrivilegeFault):
            pcu.check(halt_access(isa_map))


class TestSealVsRollback:
    def test_aborted_transaction_cannot_unseal(self, pcu, manager, isa_map,
                                               sealed_domain,
                                               faulty_backing):
        """A domain-0 transaction that faults mid-flight rolls back its
        journalled stores — the journal-bypassed seal words must not be
        'restored' to their pre-seal values alongside them."""
        faulty_backing.arm_store_fault()
        with pytest.raises(InjectedFault):
            manager.allow_instructions(sealed_domain.domain_id,
                                       ["halt", "load"])
        assert pcu.stats.reconfig_rollbacks == 1
        enter(pcu, manager, sealed_domain.domain_id)
        with pytest.raises(InstructionPrivilegeFault):
            pcu.check(halt_access(isa_map))

    def test_faulted_seal_store_repairs_toward_sealed(self, pcu, manager,
                                                      isa_map,
                                                      faulty_backing):
        """Seal stores are mirror-first: a faulting trusted-memory store
        leaves the mirror ahead of memory, so the scrubber's next pass
        repairs memory *toward* the sealed state — the seal completes,
        it never silently unwinds."""
        from repro.faults.scrub import IntegrityScrubber

        domain = manager.create_domain("tenant")
        manager.allow_instructions(domain.domain_id, ["halt"])
        faulty_backing.arm_store_fault()
        with pytest.raises(InjectedFault):
            manager.seal_privileges(domain.domain_id, instructions=["halt"])
        report = IntegrityScrubber(pcu, manager).scrub()
        assert report.memory_repairs
        enter(pcu, manager, domain.domain_id)
        with pytest.raises(InstructionPrivilegeFault):
            pcu.check(halt_access(isa_map))


class TestSealedMaskedCsr:
    def test_sealed_write_mask_zeroed(self, pcu, manager, isa_map):
        """Sealing the write side of a bitwise CSR also zeroes its
        effective mask: only no-change writes pass, and domain-0
        re-widening the mask does not resurrect it."""
        domain = manager.create_domain("tenant")
        manager.allow_instructions(domain.domain_id, ["csr"])
        manager.grant_register(domain.domain_id, "ctrl", read=True,
                               write=True)
        manager.seal_privileges(domain.domain_id, csrs=["ctrl"],
                                read=False, write=True)
        manager.set_register_mask(domain.domain_id, "ctrl", (1 << 64) - 1)
        enter(pcu, manager, domain.domain_id)
        ctrl = isa_map.csr_index("ctrl")
        csr_class = isa_map.inst_class("csr")
        pcu.check(AccessInfo(inst_class=csr_class, csr=ctrl, csr_write=True,
                             write_value=0b101, old_value=0b101))
        with pytest.raises(BitMaskViolationFault):
            pcu.check(AccessInfo(inst_class=csr_class, csr=ctrl,
                                 csr_write=True, write_value=0b111,
                                 old_value=0b101))


class TestSealAcrossContexts:
    def test_seal_survives_context_switch(self, pcu, manager, isa_map,
                                          sealed_domain):
        """save_ctx/restore_ctx park and swap the trusted-stack window;
        the seal lives in the HPT and must be untouched by either."""
        manager.allocate_trusted_stack(frames=4)
        enter(pcu, manager, sealed_domain.domain_id)
        parked = pcu.trusted_stack.save_context()
        pcu.trusted_stack.restore_context(parked)
        with pytest.raises(InstructionPrivilegeFault):
            pcu.check(halt_access(isa_map))
        with pytest.raises(RegisterReadFault):
            pcu.check(vbase_read(isa_map))


class TestSealThroughKernelLayer:
    def test_sys_dconf_seal_and_regrant(self, pcu, manager, isa_map):
        """`--layer kernel` path: seal via SYS_DCONF, re-grant via
        SYS_DCONF, and the SYS_PCHECK verdict stays sealed."""
        from repro.kernel.conformance_layer import MiniKernelSyscallLayer
        from repro.kernel.syscalls import SYS_DCONF, SYS_PCHECK

        layer = MiniKernelSyscallLayer(pcu, manager)
        domain = layer.syscall(SYS_DCONF, "create_domain", "tenant")
        layer.syscall(SYS_DCONF, "allow_instructions", domain.domain_id,
                      ["alu", "halt"])
        layer.syscall(SYS_DCONF, "seal_privileges", domain.domain_id,
                      instructions=["halt"])
        layer.syscall(SYS_DCONF, "allow_instructions", domain.domain_id,
                      ["halt"])
        enter(pcu, manager, domain.domain_id)
        layer.syscall(SYS_PCHECK,
                      AccessInfo(inst_class=isa_map.inst_class("alu")))
        with pytest.raises(InstructionPrivilegeFault):
            layer.syscall(SYS_PCHECK, halt_access(isa_map))
        assert layer.fault_counts["InstructionPrivilegeFault"] == 1


class TestSealVsRecycle:
    def test_recycled_slot_sheds_previous_tenant_seal(self, pcu, manager,
                                                      isa_map):
        """Slot teardown is the one legitimate end of a seal: the next
        tenant bound into the recycled slot starts with a clean overlay."""
        virtualizer = DomainVirtualizer(manager, max_slots=1)
        first = virtualizer.spawn(TenantManifest(instructions={"halt"}))
        physical = virtualizer.activate(first)
        virtualizer.seal_privileges(first, instructions=["halt"])
        pcu.execute_gate(GateKind.HCCALL, virtualizer.gate_id_of(physical),
                         virtualizer.gate_address_of(physical), None)
        with pytest.raises(InstructionPrivilegeFault):
            pcu.check(halt_access(isa_map))
        pcu.reset()
        virtualizer.retire(first)

        second = virtualizer.spawn(TenantManifest(instructions={"halt"}))
        physical = virtualizer.activate(second)
        pcu.execute_gate(GateKind.HCCALL, virtualizer.gate_id_of(physical),
                         virtualizer.gate_address_of(physical), None)
        pcu.check(halt_access(isa_map))  # must NOT inherit the seal

    def test_seal_on_unbound_tenant_is_deferred_noop(self, manager):
        """Seals are slot state: sealing an unbound logical tenant does
        not touch any physical slot (and is not replayed on rebind)."""
        virtualizer = DomainVirtualizer(manager, max_slots=1)
        a = virtualizer.spawn(TenantManifest(instructions={"halt"}))
        b = virtualizer.spawn(TenantManifest(instructions={"halt"}))
        virtualizer.activate(a)
        virtualizer.seal_privileges(b, instructions=["halt"])  # unbound
        physical = virtualizer.activate(b)  # evicts a, binds b
        assert manager.sealed_privileges(physical)["instructions"] == set()
