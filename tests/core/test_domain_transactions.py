"""Transactional reconfiguration: a faulting trusted-memory store must
leave the HPT/SGT bit-identical to the pre-transaction state."""

import pytest

from repro.core import (
    AccessInfo,
    ConfigurationError,
    DomainManager,
    GateKind,
    InjectedFault,
    PrivilegeCheckUnit,
    TrustedMemory,
    CONFIG_8E,
)
from repro.faults import FaultyWordBacking


@pytest.fixture
def faulty_backing(trusted_memory):
    backing = FaultyWordBacking(trusted_memory._backing)
    trusted_memory._backing = backing
    return backing


def hpt_words(pcu, domain):
    """Every trusted-memory word of one domain's HPT regions."""
    hpt = pcu.hpt
    return (
        [hpt.read_inst_word(domain, i)
         for i in range(hpt.inst_words_per_domain)]
        + [hpt.read_reg_word(domain, i)
           for i in range(hpt.reg_words_per_domain)]
        + [hpt.read_mask(domain, s)
           for s in range(hpt.mask_words_per_domain)]
    )


def sgt_words(pcu):
    sgt = pcu.sgt
    memory = pcu.trusted_memory
    words = []
    for gate in range(sgt.gate_nr):
        base = sgt.entry_address(gate)
        words += [memory.load_word(base + off * 8) for off in range(4)]
    return words


class TestGrantRollback:
    def test_hpt_bit_identical_after_mid_grant_fault(
            self, pcu, manager, faulty_backing):
        domain = manager.create_domain("victim")
        manager.allow_instructions(domain.domain_id, ["alu", "csr"])
        manager.grant_register(domain.domain_id, "vbase", read=True)
        before = hpt_words(pcu, domain.domain_id)
        faulty_backing.arm_store_fault()
        with pytest.raises(InjectedFault):
            manager.grant_register(domain.domain_id, "scratch",
                                   read=True, write=True)
        assert hpt_words(pcu, domain.domain_id) == before
        assert pcu.stats.reconfig_rollbacks == 1
        # mirrors agree with memory: a scrub pass finds nothing
        from repro.faults import IntegrityScrubber
        assert IntegrityScrubber(pcu, manager).scrub().clean

    def test_descriptor_state_rolls_back(self, pcu, manager, faulty_backing):
        domain = manager.create_domain("victim")
        manager.allow_instructions(domain.domain_id, ["alu"])
        faulty_backing.arm_store_fault()
        with pytest.raises(InjectedFault):
            manager.allow_instructions(domain.domain_id, ["load", "store"])
        assert domain.instructions == {"alu"}
        # and the manager still works: the retry commits
        manager.allow_instructions(domain.domain_id, ["load", "store"])
        assert domain.instructions == {"alu", "load", "store"}

    def test_mask_rollback(self, pcu, manager, faulty_backing):
        domain = manager.create_domain("victim")
        manager.set_register_mask(domain.domain_id, "ctrl", 0b1111)
        before = hpt_words(pcu, domain.domain_id)
        faulty_backing.arm_store_fault()
        with pytest.raises(InjectedFault):
            manager.set_register_mask(domain.domain_id, "ctrl", 0b1)
        assert hpt_words(pcu, domain.domain_id) == before

    def test_committed_grants_survive(self, pcu, manager, faulty_backing):
        domain = manager.create_domain("victim")
        manager.allow_instructions(domain.domain_id, ["alu"])
        assert pcu.stats.reconfig_rollbacks == 0
        assert not pcu.trusted_memory.in_transaction


class TestGateRollback:
    def test_register_gate_rolls_back(self, pcu, manager, faulty_backing):
        domain = manager.create_domain("dest")
        manager.register_gate(0x1000, 0x2000, domain.domain_id)
        before = sgt_words(pcu)
        gates_before = dict(manager.gates)
        faulty_backing.arm_store_fault()
        with pytest.raises(InjectedFault):
            manager.register_gate(0x3000, 0x4000, domain.domain_id)
        assert sgt_words(pcu) == before
        assert manager.gates == gates_before
        # the half-registered gate is not executable
        from repro.core import GateFault
        with pytest.raises(GateFault):
            pcu.execute_gate(GateKind.HCCALL, 1, 0x3000)

    def test_destroy_domain_rolls_back(self, pcu, manager, faulty_backing):
        domain = manager.create_domain("victim")
        manager.allow_instructions(domain.domain_id, ["alu"])
        before = hpt_words(pcu, domain.domain_id)
        faulty_backing.arm_store_fault()
        with pytest.raises(InjectedFault):
            manager.destroy_domain(domain.domain_id)
        assert domain.domain_id in manager.domains
        assert hpt_words(pcu, domain.domain_id) == before
        # still usable after the rollback
        manager.destroy_domain(domain.domain_id)
        assert domain.domain_id not in manager.domains


class TestTransactionMechanics:
    def test_nested_begin_rejected(self, trusted_memory):
        trusted_memory.begin_transaction()
        with pytest.raises(ConfigurationError):
            trusted_memory.begin_transaction()
        trusted_memory.abort_transaction()

    def test_abort_restores_first_touch_values(self, trusted_memory):
        address = trusted_memory.base
        trusted_memory.store_word(address, 0xA)
        trusted_memory.begin_transaction()
        trusted_memory.store_word(address, 0xB)
        trusted_memory.store_word(address, 0xC)
        trusted_memory.abort_transaction()
        assert trusted_memory.load_word(address) == 0xA

    def test_commit_keeps_values(self, trusted_memory):
        address = trusted_memory.base
        trusted_memory.begin_transaction()
        trusted_memory.store_word(address, 0xB)
        trusted_memory.commit_transaction()
        assert trusted_memory.load_word(address) == 0xB

    def test_nested_manager_ops_join_open_transaction(
            self, pcu, manager, faulty_backing):
        """destroy_domain internally revokes/clears: one outer rollback."""
        domain = manager.create_domain("victim")
        manager.allow_instructions(domain.domain_id, ["alu", "load", "csr"])
        manager.grant_register(domain.domain_id, "vbase", read=True)
        faulty_backing.arm_store_fault()
        with pytest.raises(InjectedFault):
            manager.destroy_domain(domain.domain_id)
        assert pcu.stats.reconfig_rollbacks == 1
