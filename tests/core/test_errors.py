"""Fault hierarchy: messages, attributes, catchability."""

import pytest

from repro.core import (
    BitMaskViolationFault,
    GateFault,
    InstructionPrivilegeFault,
    IsaGridError,
    PrivilegeFault,
    RegisterReadFault,
    RegisterWriteFault,
    TrustedMemoryFault,
    TrustedStackFault,
)
from repro.core.errors import ConfigurationError


class TestHierarchy:
    @pytest.mark.parametrize("fault", [
        InstructionPrivilegeFault(3, domain=1),
        RegisterReadFault(2, domain=1),
        RegisterWriteFault(2, domain=1),
        BitMaskViolationFault(2, 0, 1, 0, domain=1),
        GateFault("bad", gate_id=0, domain=1),
        TrustedMemoryFault(0x1000, domain=1),
        TrustedStackFault("overflow", 0x2000, domain=1),
    ])
    def test_all_faults_are_privilege_faults(self, fault):
        assert isinstance(fault, PrivilegeFault)
        assert isinstance(fault, IsaGridError)

    def test_configuration_error_is_not_a_fault(self):
        assert not isinstance(ConfigurationError("x"), PrivilegeFault)

    def test_fault_carries_domain_and_address(self):
        fault = InstructionPrivilegeFault(7, domain=3, address=0x1234)
        assert fault.domain == 3
        assert fault.address == 0x1234
        assert fault.inst_class == 7
        assert "domain 3" in str(fault)

    def test_bitmask_fault_computes_illegal_bits(self):
        fault = BitMaskViolationFault(1, old=0b0000, value=0b1010, mask=0b0010)
        assert fault.illegal_bits == 0b1000
        assert "0x8" in str(fault)

    def test_trusted_memory_fault_names_the_address(self):
        fault = TrustedMemoryFault(0xDEAD000, domain=2)
        assert fault.access_address == 0xDEAD000
        assert "0xdead000" in str(fault)

    def test_gate_fault_carries_gate_id(self):
        fault = GateFault("forged", gate_id=9)
        assert fault.gate_id == 9


class TestTrapVocabulary:
    def test_trap_str(self):
        from repro.sim import Trap, TrapKind

        trap = Trap(TrapKind.SYSCALL, cause=8, pc=0x100, message="ecall")
        text = str(trap)
        assert "SYSCALL" in text and "0x100" in text and "ecall" in text

    def test_trap_kinds_cover_needed_causes(self):
        from repro.sim import TrapKind

        names = {k.name for k in TrapKind}
        assert {"SYSCALL", "ILLEGAL_INSTRUCTION", "ISA_GRID_FAULT",
                "TRUSTED_MEMORY_FAULT", "PAGE_FAULT"} <= names
