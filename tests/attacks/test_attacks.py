"""The attack matrix: Table 1, RISC-V analogues, gate forgery.

These are the security claims of the paper: every ISA-abuse attack
succeeds on the privilege-level baseline and is mitigated by the
ISA-Grid decomposition, while legitimate privilege use keeps working.
"""

import pytest

from repro.attacks import (
    GATE_ATTACKS,
    HIDDEN_WRMSR_X86,
    POSITIVE_CONTROLS,
    RISCV_ATTACKS,
    TABLE1_ATTACKS,
    run_attack,
)


@pytest.mark.parametrize("spec", TABLE1_ATTACKS, ids=lambda s: s.name)
class TestTable1:
    def test_succeeds_natively(self, spec):
        outcome = run_attack(spec, "native")
        assert outcome.succeeded, "attack should work without ISA-Grid"
        assert outcome.completed

    def test_mitigated_by_isagrid(self, spec):
        outcome = run_attack(spec, "decomposed")
        assert outcome.mitigated
        assert outcome.faults >= 1
        assert outcome.completed, "machine must survive the blocked attack"


@pytest.mark.parametrize("spec", RISCV_ATTACKS, ids=lambda s: s.name)
class TestRiscvAttacks:
    def test_succeeds_natively(self, spec):
        assert run_attack(spec, "native").succeeded

    def test_mitigated_by_isagrid(self, spec):
        outcome = run_attack(spec, "decomposed")
        assert outcome.mitigated and outcome.completed


@pytest.mark.parametrize("spec", POSITIVE_CONTROLS, ids=lambda s: s.name)
class TestPositiveControls:
    def test_granted_privilege_still_works_under_isagrid(self, spec):
        """Least privilege, not lock-everything: a module's own granted
        resource remains usable in the decomposed kernel."""
        outcome = run_attack(spec, "decomposed")
        assert outcome.succeeded
        assert outcome.faults == 0


@pytest.mark.parametrize("spec", GATE_ATTACKS, ids=lambda s: s.name)
class TestGateForgery:
    def test_blocked_on_decomposed_kernel(self, spec):
        outcome = run_attack(spec, "decomposed")
        assert outcome.mitigated
        assert outcome.completed


class TestUnintendedInstruction:
    def test_hidden_wrmsr_is_live_code_natively(self):
        """The §2.3 motivation: bytes hidden in an immediate execute for
        real when jumped into — static views of aligned code miss them."""
        outcome = run_attack(HIDDEN_WRMSR_X86, "native")
        assert outcome.succeeded

    def test_hidden_wrmsr_blocked_at_runtime_by_isagrid(self):
        outcome = run_attack(HIDDEN_WRMSR_X86, "decomposed")
        assert outcome.mitigated


class TestMitigationCoverage:
    def test_all_table1_rows_marked_mitigable(self):
        """The Table 1 'Can ISA-Grid mitigate' column: 100% checkmarks."""
        for spec in TABLE1_ATTACKS:
            outcome = run_attack(spec, "decomposed")
            assert outcome.mitigated, spec.table1_row
