"""The unintended-instruction campaign: gadgets the scanner cannot see.

ERIM-style binary scanning inspects instruction *boundaries*; a gadget
hidden inside an immediate or displacement is invisible to it until a
jump lands mid-instruction.  The PCU checks the decoded class of
whatever actually executes, so every planted gadget must fault no
matter how it was smuggled in — that asymmetry (scanner misses,
PCU blocks) is the paper's §2.3 argument made executable.
"""

from repro.attacks import (
    build_stream,
    run_unintended_campaign,
    run_unintended_campaigns,
)
from repro.attacks.unintended import FIXED_GADGETS, OPERAND_GADGETS
from repro.baselines import linear_disassemble
from repro.x86.isa import RING0_CLASSES

import random


class TestStreamConstruction:
    def test_streams_are_deterministic(self):
        one = build_stream(random.Random(7), 7, 32)
        two = build_stream(random.Random(7), 7, 32)
        assert one == two

    def test_planted_gadget_bytes_are_present(self):
        code, planted = build_stream(random.Random(3), 3, 48)
        assert planted, "a 48-instruction stream should carry gadgets"
        for gadget in planted:
            assert 0 <= gadget.offset < len(code)

    def test_legit_boundaries_never_hit_ring0(self):
        """Straight-line execution of the stream decodes only compute
        classes — the gadgets exist solely at unintended offsets."""
        from repro.x86 import decode

        code, _ = build_stream(random.Random(11), 11, 48)
        for offset, _mnemonic, _size in linear_disassemble(code):
            assert decode(code, offset).inst_class not in RING0_CLASSES

    def test_gadget_kinds_cover_fixed_and_operand(self):
        kinds = set()
        for index in range(16):
            _, planted = build_stream(random.Random(index), index, 48)
            kinds.update(g.kind for g in planted)
        assert kinds & set(FIXED_GADGETS)
        assert kinds & set(OPERAND_GADGETS)


class TestCampaign:
    def test_campaign_blocks_everything_scanner_misses_some(self):
        result = run_unintended_campaign(0, 6, 32)
        gadgets = result.gadgets
        assert gadgets
        assert all(g.pcu_blocked for g in gadgets)
        assert any(not g.scanner_detected for g in gadgets), (
            "every gadget scanner-visible — the streams stopped hiding "
            "anything and the campaign proves nothing")
        assert result.legit_faults == 0
        assert result.sealed_blocked == result.sealed_probes > 0
        assert result.unwaived_contract_violations == 0

    def test_jobs_do_not_change_results(self):
        serial = run_unintended_campaigns([0, 1], 3, 24, jobs=1)
        parallel = run_unintended_campaigns([0, 1], 3, 24, jobs=2)
        assert [r.to_dict() for r in serial] == [r.to_dict()
                                                 for r in parallel]
