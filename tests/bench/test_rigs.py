"""Rig-level differential gate: fast path must not change simulation."""

import pytest

from repro.bench.rigs import DEFAULT_RIGS, RIGS, resolve_rigs, run_rig


def test_resolve_defaults_to_eval_suite():
    assert resolve_rigs(None) == list(DEFAULT_RIGS)
    assert resolve_rigs("all") == list(RIGS)
    assert "smoke" not in DEFAULT_RIGS  # CI-only rig stays opt-in


def test_resolve_rejects_unknown_rig():
    with pytest.raises(KeyError):
        resolve_rigs("no_such_rig")


def test_smoke_rig_fast_vs_slow_bit_identical():
    """The compiled-verdict fast path must be invisible to the simulation:
    same retired instructions and same simulated cycles as the uncompiled
    pipeline, differing only in wall clock."""
    fast = run_rig("smoke", fast_path=True)
    slow = run_rig("smoke", fast_path=False)
    assert fast["fast_path"] is True and slow["fast_path"] is False
    assert fast["instructions"] == slow["instructions"] > 0
    assert fast["cycles"] == slow["cycles"] > 0


def test_run_rig_payload_shape():
    payload = run_rig("smoke")
    assert set(payload) >= {
        "rig", "fast_path", "instructions", "cycles", "wall_s", "ips", "detail"
    }
    assert payload["rig"] == "smoke"
    # wall_s and ips are rounded independently, so compare loosely.
    assert payload["ips"] == pytest.approx(
        payload["instructions"] / payload["wall_s"], rel=0.05
    )
