"""Bench trajectory files and the CI regression gate."""

import pytest

from repro.bench.report import (
    DEFAULT_REGRESSION_THRESHOLD,
    FORMAT,
    build_trajectory,
    compare_trajectories,
    load_trajectory,
    write_trajectory,
)


def payload(rig, ips, instructions=1000, cycles=2000.0, wall_s=1.0):
    return {
        "rig": rig,
        "fast_path": True,
        "instructions": instructions,
        "cycles": cycles,
        "wall_s": wall_s,
        "ips": ips,
        "detail": {},
    }


def trajectory(*rig_ips, **kwargs):
    return build_trajectory(
        [payload(rig, ips) for rig, ips in rig_ips], **kwargs
    )


class TestTrajectoryFiles:
    def test_build_keys_rigs_by_name(self):
        doc = trajectory(("gate_stress", 100.0), ("fig5_riscv", 200.0),
                         label="seed", stamp="20260805")
        assert doc["format"] == FORMAT
        assert doc["label"] == "seed"
        assert doc["stamp"] == "20260805"
        assert set(doc["rigs"]) == {"gate_stress", "fig5_riscv"}
        assert "rig" not in doc["rigs"]["gate_stress"]
        assert doc["rigs"]["gate_stress"]["ips"] == 100.0

    def test_round_trip(self, tmp_path):
        doc = trajectory(("gate_stress", 123.0), label="x", stamp="s")
        path = str(tmp_path / "nested" / "BENCH_s.json")
        assert write_trajectory(doc, path) == path
        assert load_trajectory(path) == doc

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            load_trajectory(str(path))


class TestRegressionGate:
    def test_small_drop_within_budget_passes(self):
        lines, regressions = compare_trajectories(
            trajectory(("gate_stress", 90.0)),
            trajectory(("gate_stress", 100.0)),
        )
        assert len(lines) == 1 and not regressions

    def test_drop_past_threshold_fails(self):
        lines, regressions = compare_trajectories(
            trajectory(("gate_stress", 79.0)),
            trajectory(("gate_stress", 100.0)),
        )
        assert regressions == [lines[0]]

    def test_boundary_is_exclusive(self):
        # Exactly threshold * baseline lost is still within budget.
        base = 100.0
        cur = base * (1.0 - DEFAULT_REGRESSION_THRESHOLD)
        _, regressions = compare_trajectories(
            trajectory(("gate_stress", cur)), trajectory(("gate_stress", base))
        )
        assert not regressions

    def test_custom_threshold(self):
        _, regressions = compare_trajectories(
            trajectory(("gate_stress", 94.0)),
            trajectory(("gate_stress", 100.0)),
            threshold=0.05,
        )
        assert len(regressions) == 1

    def test_missing_rigs_reported_but_not_regressions(self):
        lines, regressions = compare_trajectories(
            trajectory(("new_rig", 50.0)),
            trajectory(("old_rig", 100.0)),
        )
        assert not regressions
        assert any("no baseline" in line for line in lines)
        assert any("in baseline only" in line for line in lines)

    def test_speedup_reported_with_ratio(self):
        lines, regressions = compare_trajectories(
            trajectory(("gate_stress", 250.0)),
            trajectory(("gate_stress", 100.0)),
        )
        assert not regressions
        assert "2.50x" in lines[0]
