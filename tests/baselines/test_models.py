"""Privilege-level and trap-and-emulate baseline models."""

import pytest

from repro.baselines import (
    TrapAndEmulateModel,
    UNTRAPPABLE_PRIVILEGED,
    VM_EXIT_CYCLES,
    compare_exposure,
    compare_switch_latency,
    policy_from_isa_map,
)
from repro.kernel import RiscvKernel, X86Kernel
from repro.riscv import RISCV_ISA_MAP
from repro.x86 import X86_ISA_MAP


class TestPrivilegeLevelPolicy:
    def test_kernel_sees_everything(self):
        policy = policy_from_isa_map(RISCV_ISA_MAP)
        kernel_view = policy.accessible(1)
        assert "csr:satp" in kernel_view
        assert "inst:sret" in kernel_view
        assert "inst:alu" in kernel_view

    def test_user_sees_only_compute(self):
        policy = policy_from_isa_map(RISCV_ISA_MAP)
        user_view = policy.accessible(0)
        assert "inst:alu" in user_view
        assert "csr:satp" not in user_view
        assert "inst:csr" not in user_view

    def test_exposure_monotone_in_level(self):
        policy = policy_from_isa_map(X86_ISA_MAP)
        assert policy.exposure(1) > policy.exposure(0)


class TestExposureComparison:
    @pytest.mark.parametrize("kernel_cls", [RiscvKernel, X86Kernel])
    def test_isagrid_reduces_worst_case_exposure(self, kernel_cls):
        """The least-privilege claim, quantified: any single compromised
        domain reaches far fewer privileged resources than a kernel-level
        component does under privilege levels alone."""
        kernel = kernel_cls("decomposed")
        comparison = compare_exposure(kernel.system.manager)
        assert comparison.worst_domain_exposure < comparison.baseline_exposure
        assert comparison.reduction_factor > 1.5

    def test_every_module_domain_is_narrow(self):
        kernel = X86Kernel("decomposed")
        comparison = compare_exposure(kernel.system.manager)
        for name, exposure in comparison.domain_exposure.items():
            if name == "kernel":
                continue
            assert exposure <= 10, "%s exposes too much" % name


class TestTrapAndEmulate:
    def test_exit_cost_matches_quoted_figure(self):
        model = TrapAndEmulateModel()
        assert model.check_cost("wrmsr") >= VM_EXIT_CYCLES

    def test_wrpkru_cannot_be_controlled(self):
        """The §2.3 coverage hole: MPK instructions do not trap."""
        model = TrapAndEmulateModel()
        for inst_class in UNTRAPPABLE_PRIVILEGED:
            assert not model.can_control(inst_class)
            assert model.check_cost(inst_class) == 0
        assert model.uncovered_accesses == len(UNTRAPPABLE_PRIVILEGED)

    def test_total_overhead_accumulates(self):
        model = TrapAndEmulateModel()
        for _ in range(10):
            model.check_cost("rdmsr")
        assert model.exits == 10
        assert model.total_overhead_cycles() == 10 * (model.vm_exit_cycles + model.check_cycles)

    def test_comparison_rows(self):
        rows = compare_switch_latency(isagrid_hccall_cycles=34.0)
        assert rows["hypervisor trap"] == VM_EXIT_CYCLES
        assert rows["speedup"] == pytest.approx(VM_EXIT_CYCLES / 34.0)
        assert rows["speedup"] > 10  # the paper's headline contrast
