"""Binary-scanning baseline: hidden bytes and unsafe rewriting."""

import pytest

from repro.baselines import (
    find_byte_occurrences,
    linear_disassemble,
    rewrite_hidden_bytes,
    scan_program,
)
from repro.x86 import assemble
from repro.x86.encoding import simple_bytes


class TestByteSearch:
    def test_finds_all_offsets(self):
        code = b"\x0F\x30" + b"\x90" + b"\x0F\x30"
        assert find_byte_occurrences(code, b"\x0F\x30") == [0, 3]

    def test_finds_overlapping(self):
        code = b"\xAA\xAA\xAA"
        assert find_byte_occurrences(code, b"\xAA\xAA") == [0, 1]

    def test_empty_result(self):
        assert find_byte_occurrences(b"\x90" * 8, b"\x0F\x30") == []


class TestLinearDisassembly:
    def test_clean_stream(self):
        program = assemble("nop\n    wrmsr\n    ret\n", base=0)
        listing = linear_disassemble(program.data)
        assert [m for _, m, _ in listing] == ["nop", "wrmsr", "ret"]

    def test_resynchronizes_on_garbage(self):
        code = b"\xD6" + b"\x90"  # bad byte, then nop
        listing = linear_disassemble(code)
        assert listing == [(1, "nop", 1)]


class TestScanReports:
    def test_intended_only(self):
        program = assemble("wrmsr\n    nop\n", base=0)
        report = scan_program(program.data)["wrmsr"]
        assert report.total_occurrences == [0]
        assert report.intended_offsets == [0]
        assert not report.has_hidden_instances

    def test_hidden_occurrence_detected(self):
        """wrmsr bytes buried inside a mov immediate: the byte scan sees
        them, the instruction stream does not."""
        program = assemble("""
            mov rax, 0x11300F22
            nop
        """, base=0)
        report = scan_program(program.data)["wrmsr"]
        assert report.has_hidden_instances
        assert report.intended_offsets == []

    def test_paper_out_instruction_phenomenon(self):
        """Dense data reproduces the >50k-occurrences problem in
        miniature: hidden instances vastly outnumber intended ones."""
        # Little-endian immediates: value 0x...300F puts the bytes
        # 0F 30 (wrmsr) adjacent in memory.
        source = "\n".join(
            "    mov rax, 0x%016X" % (0x0000_300F_0000_300F + (i << 32)) for i in range(50)
        ) + "\n    wrmsr\n"
        program = assemble(source, base=0)
        report = scan_program(program.data)["wrmsr"]
        assert len(report.intended_offsets) == 1
        assert len(report.unintended_offsets) >= 50


class TestRewriting:
    def test_clean_binary_rewrites_safely(self):
        program = assemble("nop\n    add rax, rbx\n    ret\n", base=0)
        result = rewrite_hidden_bytes(program.data)
        assert result.safe
        assert result.rewritten == program.data

    def test_rewriting_hidden_bytes_corrupts_carrier(self):
        """The undecidable-alignment problem by construction: NOP-ing
        the hidden wrmsr destroys the legitimate mov around it."""
        program = assemble("""
            mov rax, 0x11300F22
            ret
        """, base=0)
        result = rewrite_hidden_bytes(program.data)
        assert result.patched_offsets
        assert not result.safe
        assert any(m == "mov_imm" for _, m in result.corrupted_instructions)

    def test_rewrite_changes_program_semantics(self):
        program = assemble("mov rax, 0x11300F22\n    hlt\n", base=0)
        result = rewrite_hidden_bytes(program.data, forbidden=("wrmsr",))
        from repro.x86.encoding import decode

        original = decode(program.data)
        assert original.imm == 0x11300F22
        patched = decode(result.rewritten)
        assert patched.imm != original.imm  # immediate destroyed


class TestRawBytePatterns:
    def test_bytes_entry_reported_by_hex_name(self):
        from repro.x86.encoding import Encoder

        # mov cr3, rax aligned, plus the same prefix hidden in an imm64.
        code = (Encoder.mov_cr(3, 0, True)
                + Encoder.mov_imm64(0, 0x1122_0F22_3344_5566))
        reports = scan_program(code, forbidden=(b"\x0f\x22",))
        report = reports["0f22"]
        assert report.intended_offsets == [0]
        # little-endian imm64: the 0F 22 pair sits 5 bytes into the imm
        assert report.unintended_offsets == [3 + 2 + 5]

    def test_string_and_bytes_entries_mix(self):
        code = simple_bytes("wrmsr") + b"\x90"
        reports = scan_program(code, forbidden=("wrmsr", b"\x0f\x30"))
        assert reports["wrmsr"].intended_offsets == [0]
        # The raw twin of the same pattern agrees, under its hex name.
        assert reports["0f30"].intended_offsets == [0]


class TestRewriteRobustness:
    def test_undecodable_patched_suffix_is_corruption_not_a_crash(self):
        """Patching can leave an old instruction boundary undecodable
        (the NOP forms an illegal ModRM): `xchg rsp, rsi` ends in the
        hlt byte 0xF4; NOP-ing it yields ModRM 0x90 — a memory form the
        decoder rejects.  The rewrite must classify that boundary as
        corrupted instead of raising EncodingError."""
        code = bytes([0x48, 0x87, 0xF4])  # xchg: REX.W 87 /r, rm=rsp
        result = rewrite_hidden_bytes(code, forbidden=("hlt",))
        assert result.patched_offsets == [2]
        assert (0, "xchg") in result.corrupted_instructions
        assert not result.safe

    def test_overlapping_occurrences_patched_and_counted_once(self):
        """Self-overlapping and cross-pattern occurrences must coalesce:
        every hidden offset reported exactly once, every byte patched
        exactly once, and the rewrite must not grow the program."""
        from repro.x86.encoding import Encoder

        imm = int.from_bytes(b"\xf4\xf4\xf4" + b"\x11" * 5, "little")
        code = Encoder.mov_imm64(0, imm) + simple_bytes("nop")
        result = rewrite_hidden_bytes(code, forbidden=("hlt", b"\xf4\xf4"))
        # hlt hides at 2,3,4; the two-byte pattern self-overlaps at 2,3.
        assert result.patched_offsets == [2, 3, 4]
        assert len(result.patched_offsets) == len(set(result.patched_offsets))
        assert len(result.rewritten) == len(code)
        assert result.rewritten[2:5] == b"\x90\x90\x90"
        assert result.rewritten[5:] == code[5:]
        assert result.rewritten[:2] == code[:2]
