"""Binary-scanning baseline: hidden bytes and unsafe rewriting."""

import pytest

from repro.baselines import (
    find_byte_occurrences,
    linear_disassemble,
    rewrite_hidden_bytes,
    scan_program,
)
from repro.x86 import assemble
from repro.x86.encoding import simple_bytes


class TestByteSearch:
    def test_finds_all_offsets(self):
        code = b"\x0F\x30" + b"\x90" + b"\x0F\x30"
        assert find_byte_occurrences(code, b"\x0F\x30") == [0, 3]

    def test_finds_overlapping(self):
        code = b"\xAA\xAA\xAA"
        assert find_byte_occurrences(code, b"\xAA\xAA") == [0, 1]

    def test_empty_result(self):
        assert find_byte_occurrences(b"\x90" * 8, b"\x0F\x30") == []


class TestLinearDisassembly:
    def test_clean_stream(self):
        program = assemble("nop\n    wrmsr\n    ret\n", base=0)
        listing = linear_disassemble(program.data)
        assert [m for _, m, _ in listing] == ["nop", "wrmsr", "ret"]

    def test_resynchronizes_on_garbage(self):
        code = b"\xD6" + b"\x90"  # bad byte, then nop
        listing = linear_disassemble(code)
        assert listing == [(1, "nop", 1)]


class TestScanReports:
    def test_intended_only(self):
        program = assemble("wrmsr\n    nop\n", base=0)
        report = scan_program(program.data)["wrmsr"]
        assert report.total_occurrences == [0]
        assert report.intended_offsets == [0]
        assert not report.has_hidden_instances

    def test_hidden_occurrence_detected(self):
        """wrmsr bytes buried inside a mov immediate: the byte scan sees
        them, the instruction stream does not."""
        program = assemble("""
            mov rax, 0x11300F22
            nop
        """, base=0)
        report = scan_program(program.data)["wrmsr"]
        assert report.has_hidden_instances
        assert report.intended_offsets == []

    def test_paper_out_instruction_phenomenon(self):
        """Dense data reproduces the >50k-occurrences problem in
        miniature: hidden instances vastly outnumber intended ones."""
        # Little-endian immediates: value 0x...300F puts the bytes
        # 0F 30 (wrmsr) adjacent in memory.
        source = "\n".join(
            "    mov rax, 0x%016X" % (0x0000_300F_0000_300F + (i << 32)) for i in range(50)
        ) + "\n    wrmsr\n"
        program = assemble(source, base=0)
        report = scan_program(program.data)["wrmsr"]
        assert len(report.intended_offsets) == 1
        assert len(report.unintended_offsets) >= 50


class TestRewriting:
    def test_clean_binary_rewrites_safely(self):
        program = assemble("nop\n    add rax, rbx\n    ret\n", base=0)
        result = rewrite_hidden_bytes(program.data)
        assert result.safe
        assert result.rewritten == program.data

    def test_rewriting_hidden_bytes_corrupts_carrier(self):
        """The undecidable-alignment problem by construction: NOP-ing
        the hidden wrmsr destroys the legitimate mov around it."""
        program = assemble("""
            mov rax, 0x11300F22
            ret
        """, base=0)
        result = rewrite_hidden_bytes(program.data)
        assert result.patched_offsets
        assert not result.safe
        assert any(m == "mov_imm" for _, m in result.corrupted_instructions)

    def test_rewrite_changes_program_semantics(self):
        program = assemble("mov rax, 0x11300F22\n    hlt\n", base=0)
        result = rewrite_hidden_bytes(program.data, forbidden=("wrmsr",))
        from repro.x86.encoding import decode

        original = decode(program.data)
        assert original.imm == 0x11300F22
        patched = decode(result.rewritten)
        assert patched.imm != original.imm  # immediate destroyed
