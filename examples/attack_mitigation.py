#!/usr/bin/env python
"""Table 1: run every ISA-abuse-based attack with and without ISA-Grid.

Each attack hijacks control flow in a kernel module that does *not*
hold the attack's prerequisite privilege (the paper's attacker model),
then tries the abuse.  Natively every attack lands; on the decomposed
kernel the PCU faults, the kernel records it, and the machine keeps
running.

Usage::

    python examples/attack_mitigation.py
"""

from repro.analysis import render_table
from repro.attacks import (
    GATE_ATTACKS,
    POSITIVE_CONTROLS,
    RISCV_ATTACKS,
    TABLE1_ATTACKS,
    evaluate_attack,
    run_attack,
)


def verdict(outcome) -> str:
    if outcome.succeeded:
        return "SUCCEEDS"
    return "mitigated" if outcome.mitigated else "no effect"


def main() -> None:
    print("Table 1 attacks (x86) + RISC-V analogues")
    print("========================================\n")
    rows = []
    for spec in TABLE1_ATTACKS + RISCV_ATTACKS:
        native, decomposed = evaluate_attack(spec)
        rows.append((
            spec.name, spec.prerequisite, spec.compromised_module,
            verdict(native), verdict(decomposed),
        ))
    print(render_table(
        ("attack", "prerequisite", "hijacked module", "native", "ISA-Grid"), rows
    ))

    print("\nGate forgery & unintended instructions (§4.2, §8)")
    print("==================================================\n")
    rows = []
    for spec in GATE_ATTACKS:
        outcome = run_attack(spec, "decomposed")
        rows.append((spec.name, spec.prerequisite, verdict(outcome)))
    for spec in POSITIVE_CONTROLS:
        outcome = run_attack(spec, "decomposed")
        rows.append((spec.name + " (positive control)", spec.prerequisite, verdict(outcome)))
    print(render_table(("attack", "vector", "ISA-Grid"), rows))

    mitigated = sum(
        1 for spec in TABLE1_ATTACKS + RISCV_ATTACKS
        if run_attack(spec, "decomposed").mitigated
    )
    total = len(TABLE1_ATTACKS) + len(RISCV_ATTACKS)
    print("\nmitigation rate: %d/%d (the paper's 100%%)" % (mitigated, total))


if __name__ == "__main__":
    main()
