#!/usr/bin/env python
"""Quickstart: build an ISA-Grid machine, create domains, cross a gate.

Runs a tiny RISC-V program on a simulated Rocket-like core with the
Privilege Check Unit attached:

1. domain-0 (the all-privileged init domain) configures two domains —
   a compute-only `app` domain and a `vm` domain that may write SATP;
2. the program crosses into `vm` through a registered unforgeable gate,
   writes SATP, and returns with ``hcrets``;
3. the same write attempted from the `app` domain faults.

Usage::

    python examples/quickstart.py
"""

from repro.core import GateKind, PrivilegeFault
from repro.riscv import CSR_ADDRESS, KERNEL_BASE, assemble, build_riscv_system

PROGRAM = """
entry:                      # starts in domain-0
    li t0, 0
g_leave:
    hccall t0               # gate 0: enter the app domain
app_code:
    li a0, 0x1234
    li t0, 1
g_vm:
    hccalls t0              # gate 1: call into the vm domain
back:
    csrr a1, satp           # read back what the vm domain installed
    li t2, 1
    csrw satp, t2           # ILLEGAL: app domain may not write SATP
    halt
vm_entry:                   # vm domain: the only code allowed this write
    csrw satp, a0
    hcrets
handler:                    # ISA-Grid faults vector here
    csrr a2, scause
    li a0, 0
    halt
"""


def main() -> None:
    system = build_riscv_system()
    manager = system.manager

    # Domain-0 software: create domains and grant least privilege.
    app = manager.create_domain("app")
    manager.allow_instructions(
        app.domain_id,
        ["alu", "load", "store", "branch", "jump", "csr", "halt"],
    )
    manager.grant_register(app.domain_id, "satp", read=True)  # read-only!
    manager.grant_register(app.domain_id, "scause", read=True)
    manager.grant_register(app.domain_id, "stvec", read=True, write=True)

    vm = manager.create_domain("vm")
    manager.allow_instructions(vm.domain_id, ["alu", "csr"])
    manager.grant_register(vm.domain_id, "satp", read=True, write=True)

    manager.allocate_trusted_stack()

    program = assemble(PROGRAM, base=KERNEL_BASE)
    system.load(program)

    # Install the fault handler and register the two gates.
    system.cpu.write_csr(CSR_ADDRESS["stvec"], program.symbol("handler"))
    manager.register_gate(program.symbol("g_leave"), program.symbol("app_code"), app.domain_id)
    manager.register_gate(program.symbol("g_vm"), program.symbol("vm_entry"), vm.domain_id)

    print("domains:")
    for line in manager.describe():
        print("   ", line)

    stats = system.run(program.symbol("entry"), max_steps=10_000)

    satp = system.cpu.csrs[CSR_ADDRESS["satp"]]
    scause = system.cpu.regs[12]
    print()
    print("ran %d instructions in %.0f simulated cycles" % (stats.instructions, stats.cycles))
    print("SATP written through the vm gate:     0x%x (expected 0x1234)" % satp)
    print("read-back in the app domain (a1):     0x%x" % system.cpu.regs[11])
    print("app-domain write attempt:             faulted, scause=%d (ISA-Grid)" % scause)
    print("domain switches:                      %d" % system.pcu.stats.domain_switches)
    print("privilege-cache hit rates:            %s" % system.pcu.stats.hit_rates())
    assert satp == 0x1234
    assert scause == 24  # CAUSE_ISA_GRID_FAULT
    print()
    print("OK: the gate admitted the privileged write; the app domain could not forge it.")


if __name__ == "__main__":
    main()
