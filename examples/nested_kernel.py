#!/usr/bin/env python
"""Use case 2: a Nested-Kernel monitor hardened by ISA-Grid (§6.2).

Every page-table modification is mediated by a monitor that runs in its
own ISA domain (the only domain allowed to flip CR0.WP and write CR3);
the outer kernel cannot touch those registers except for CR4.SMAP.
Also demonstrates the PKS trampoline estimate of use case 3.

Usage::

    python examples/nested_kernel.py
"""

from repro.analysis import render_table
from repro.kernel import X86Kernel, estimate_case3, run_pks_demo
from repro.kernel.x86_kernel import DATA_BASE, OFF_MON_LOG, OFF_PT_AREA
from repro.x86 import USER_BASE, assemble

WORKLOAD = """
user_entry:
    mov rsp, 0x6f0000
    mov r12, 50
loop:
    mov rax, 9          # mmap -> monitored page-table update
    mov rdi, 0xABC
    syscall
    sub r12, 1
    jne loop
    mov rax, 0
    mov rdi, 0
    syscall
"""


def main() -> None:
    program = assemble(WORKLOAD, base=USER_BASE)

    rows = []
    for label, mode, variant in (
        ("unmodified kernel", "native", "plain"),
        ("Nest.Mon.", "decomposed", "nested"),
        ("Nest.Mon.Log", "decomposed", "nested_log"),
    ):
        kernel = X86Kernel(mode, variant=variant)
        stats = kernel.run(program, max_steps=600_000)
        pt0 = kernel.memory.load(DATA_BASE + OFF_PT_AREA, 8)
        log0 = kernel.memory.load(DATA_BASE + OFF_MON_LOG, 8)
        rows.append((label, round(stats.cycles), hex(pt0), hex(log0),
                     kernel.fault_count))
    print("50 mediated page-table updates (use case 2):\n")
    print(render_table(
        ("kernel", "cycles", "pt entry", "log entry", "faults"), rows
    ))
    print("\nthe monitor wrote the page table (0xabc) behind its gates;")
    print("the log variant additionally recorded each modification.")

    print("\nPKS trampoline (use case 3):")
    demo = run_pks_demo()
    print("    wrpkrs inside the trampoline domain : %s"
          % ("executes" if demo.trampoline_writes_succeeded else "blocked"))
    print("    wrpkrs anywhere else                : %s"
          % ("faults" if demo.outside_write_blocked else "EXECUTES"))
    estimate = estimate_case3()
    print("    switch cost: %.0f (MPK trampoline 105 + two hccall %.0f)"
          % (estimate.pks_with_isagrid_cycles, estimate.two_hccall_cycles))
    for label, cost in estimate.alternatives.items():
        print("        vs %-28s %4d cycles" % (label, cost))


if __name__ == "__main__":
    main()
