#!/usr/bin/env python
"""Why binary scanning fails and ISA-Grid does not (§2.3, §8).

Builds an x86 module whose immediates hide ``wrmsr`` bytes, then shows:

1. a byte-level scan finds dozens of occurrences that linear
   disassembly (what a code reviewer or scanner sees) does not;
2. NOP-rewriting the hidden bytes corrupts the carrying instructions —
   the undecidable-alignment problem;
3. jumping into the middle of an immediate *executes* the hidden wrmsr
   on a normal machine, while the decomposed ISA-Grid kernel blocks it
   at issue time.

Usage::

    python examples/unintended_instructions.py
"""

from repro.attacks import HIDDEN_WRMSR_X86, run_attack
from repro.baselines import rewrite_hidden_bytes, scan_program
from repro.x86 import assemble

MODULE = "\n".join(
    "    mov rax, 0x%016X" % (0x0000300F_0000300F + (i << 32)) for i in range(24)
) + "\n    wrmsr\n    ret\n"


def main() -> None:
    program = assemble(MODULE, base=0x200000)
    print("module: 24 mov-immediates + one intended wrmsr "
          "(%d bytes)" % program.size)

    report = scan_program(program.data)["wrmsr"]
    print("\nbyte-level scan for wrmsr (0F 30):")
    print("    total occurrences    : %d" % len(report.total_occurrences))
    print("    on the aligned stream: %d  <- all a scanner can whitelist"
          % len(report.intended_offsets))
    print("    hidden in immediates : %d  <- reachable by jump-into-middle"
          % len(report.unintended_offsets))

    rewrite = rewrite_hidden_bytes(program.data, forbidden=("wrmsr",))
    print("\nERIM-style rewrite (NOP out the hidden bytes):")
    print("    patched offsets       : %d" % len(rewrite.patched_offsets))
    print("    corrupted instructions: %d -> rewrite is UNSAFE"
          % len(rewrite.corrupted_instructions))

    print("\nexecuting a hidden wrmsr by jumping into an immediate:")
    native = run_attack(HIDDEN_WRMSR_X86, "native")
    protected = run_attack(HIDDEN_WRMSR_X86, "decomposed")
    print("    native kernel  : %s (MSR 0x150 written: %s)"
          % ("attack SUCCEEDS" if native.succeeded else "blocked",
             native.succeeded))
    print("    ISA-Grid kernel: %s (%d fault recorded)"
          % ("mitigated" if protected.mitigated else "NOT mitigated",
             protected.faults))
    print("\nISA-Grid checks the *decoded* instruction stream, so hidden")
    print("encodings are indistinguishable from ordinary ones at check time.")


if __name__ == "__main__":
    main()
