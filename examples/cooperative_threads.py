#!/usr/bin/env python
"""Per-thread trusted stacks: a domain-0 context switch (§5.2, §8).

The paper's user-space extension sketch: domain-0 software maintains a
trusted stack per thread and swaps the ``hcsp``/``hcsb``/``hcsl``
registers on a thread switch.  This demo runs two cooperative threads
in the kernel domain:

* thread A starts, then calls the domain-0 switch gate;
* domain-0 saves A's stack context, installs B's (whose stack was
  seeded with a synthetic entry frame), and executes ``hcrets`` — which
  "returns" into thread B's entry;
* B runs and switches back the same way; A resumes exactly after its
  own gate call.

Usage::

    python examples/cooperative_threads.py
"""

from repro.riscv import CSR_ADDRESS, KERNEL_BASE, TRUSTED_BASE, TRUSTED_SIZE, assemble, build_riscv_system

#: Context table in trusted memory: slot 0 = thread A save area,
#: slot 1 = thread B context (written by domain-0 setup below).
CTXTAB = TRUSTED_BASE + TRUSTED_SIZE - 0x100

PROGRAM = """
entry:                       # domain-0
    li t0, 0
g_start:
    hccall t0                # -> thread A in the kernel domain
thread_a:
    li s5, 0xA               # A ran
    li t0, 1
g_switch_a:
    hccalls t0               # -> domain-0 switch; our frame lands on A's stack
resume_a:
    li s7, 0xAB              # A resumed after B yielded back
    halt
thread_b:                    # entered through B's seeded frame
    li s6, 0xB               # B ran
    li t0, 2
g_switch_b:
    hccalls t0               # -> domain-0 switch-back
    halt                     # not reached in this demo

fn_tswitch:                  # domain-0: A -> B
    li t1, %(ctxtab)d
    csrr t2, hcsp
    sd t2, 0(t1)
    csrr t2, hcsb
    sd t2, 8(t1)
    csrr t2, hcsl
    sd t2, 16(t1)
    ld t2, 32(t1)
    csrw hcsp, t2
    ld t2, 40(t1)
    csrw hcsb, t2
    ld t2, 48(t1)
    csrw hcsl, t2
    hcrets                   # pops B's seeded frame -> thread_b

fn_tswitch_back:             # domain-0: B -> A
    li t1, %(ctxtab)d
    ld t2, 0(t1)
    csrw hcsp, t2
    ld t2, 8(t1)
    csrw hcsb, t2
    ld t2, 16(t1)
    csrw hcsl, t2
    hcrets                   # pops A's frame -> resume_a
""" % {"ctxtab": CTXTAB}


def run_demo():
    system = build_riscv_system()
    manager = system.manager
    kernel = manager.create_domain("kernel")
    manager.allow_instructions(
        kernel.domain_id, ["alu", "load", "store", "branch", "jump", "halt"]
    )

    program = assemble(PROGRAM, base=KERNEL_BASE)
    system.load(program)

    # Thread A's live stack; thread B's stack seeded with its entry.
    manager.allocate_trusted_stack(frames=16)
    b_context = manager.create_thread_stack(
        frames=16,
        entry_address=program.symbol("thread_b"),
        entry_domain=kernel.domain_id,
    )
    memory = system.machine.memory
    memory.store_word(CTXTAB + 32, b_context[0])
    memory.store_word(CTXTAB + 40, b_context[1])
    memory.store_word(CTXTAB + 48, b_context[2])

    manager.register_gate(program.symbol("g_start"), program.symbol("thread_a"), kernel.domain_id)
    manager.register_gate(program.symbol("g_switch_a"), program.symbol("fn_tswitch"), 0)
    manager.register_gate(program.symbol("g_switch_b"), program.symbol("fn_tswitch_back"), 0)

    stats = system.run(program.symbol("entry"), max_steps=10_000)
    return system, stats


def main() -> None:
    system, stats = run_demo()
    regs = system.cpu.regs
    print("thread A ran:          %s (s5 = 0x%X)" % (regs[21] == 0xA, regs[21]))
    print("thread B ran:          %s (s6 = 0x%X)" % (regs[22] == 0xB, regs[22]))
    print("thread A resumed:      %s (s7 = 0x%X)" % (regs[23] == 0xAB, regs[23]))
    print("domain switches:       %d" % system.pcu.stats.domain_switches)
    print("final domain:          %d (kernel)" % system.pcu.current_domain)
    assert regs[21] == 0xA and regs[22] == 0xB and regs[23] == 0xAB
    print("\nOK: two threads interleaved across ISA domains on separate trusted stacks.")


if __name__ == "__main__":
    main()
