#!/usr/bin/env python
"""Use case §6.4: an in-kernel sandbox guarded by ISA-Grid.

PrivBox/Dune-style hosting: application code runs *in supervisor mode*
(kernel-speed, no syscall boundary) inside a compute-only ISA domain —
every privileged instruction is dead there, enforced by the PCU rather
than by error-prone binary scanning.

Usage::

    python examples/sandbox.py
"""

from repro.kernel import run_sandbox


def main() -> None:
    print("well-behaved guest (computes 6 * 7 at kernel speed):")
    result = run_sandbox("""
        li a0, 6
        li a1, 7
        mul a0, a0, a1
        halt
    """)
    print("    exit code           : %d" % result.exit_code)
    print("    privileged attempts : %d" % result.blocked_attempts)
    print("    instructions/cycles : %d / %.0f" % (result.instructions, result.cycles))

    print("\nhostile guest (tries to take over the address space and")
    print("trap vector, then forge a gate):")
    result = run_sandbox("""
        li t5, 0xdead
        csrw satp, t5
        csrw stvec, t5
        li t5, 0
        hccall t5
        li a0, 0
        halt
    """)
    print("    blocked attempts    : %d (satp, stvec, forged gate)"
          % result.blocked_attempts)
    print("    guest still exited  : code %d — host unharmed" % result.exit_code)
    assert result.blocked_attempts == 3

    print("\nselective exposure (Dune-style read-only introspection):")
    result = run_sandbox("csrr a0, satp\n    halt\n",
                         extra_readable_csrs=("satp",))
    print("    satp readable by grant, write still dead: clean=%s" % result.clean)


if __name__ == "__main__":
    main()
