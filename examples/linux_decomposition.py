#!/usr/bin/env python
"""Use case 1: kernel decomposition on both prototypes (§6.1, Figures 5-7).

Boots the MiniKernel in native and decomposed modes on RISC-V and x86,
runs the SQLite-profile workload on each, and reports:

* the domain inventory with per-domain privileges,
* normalized execution time (the paper's < 1% overhead claim),
* the attack-surface reduction vs privilege levels alone.

Usage::

    python examples/linux_decomposition.py
"""

from repro.analysis import format_normalized, render_table
from repro.baselines import compare_exposure
from repro.kernel import RiscvKernel, X86Kernel
from repro.workloads import SQLITE, normalized_time, run_riscv_app, run_x86_app


def main() -> None:
    print("Booting kernels and running the SQLite-profile workload...\n")

    riscv_native = run_riscv_app(SQLITE, "native")
    riscv_decomposed = run_riscv_app(SQLITE, "decomposed")
    x86_native = run_x86_app(SQLITE, "native")
    x86_decomposed = run_x86_app(SQLITE, "decomposed")

    print(render_table(
        ("arch", "native cycles", "decomposed cycles", "normalized"),
        [
            ("riscv", round(riscv_native.cycles), round(riscv_decomposed.cycles),
             format_normalized(normalized_time(riscv_decomposed, riscv_native))),
            ("x86", round(x86_native.cycles), round(x86_decomposed.cycles),
             format_normalized(normalized_time(x86_decomposed, x86_native))),
        ],
    ))

    kernel = X86Kernel("decomposed")
    print("\nx86 domain inventory (least privilege in action):")
    for line in kernel.system.manager.describe():
        print("   ", line)

    comparison = compare_exposure(kernel.system.manager)
    print("\nattack-surface comparison (privileged resources reachable by one")
    print("compromised component):")
    print("    privilege levels alone : %d resources (everything)"
          % comparison.baseline_exposure)
    print("    worst ISA-Grid domain  : %d resources"
          % comparison.worst_domain_exposure)
    print("    reduction              : %.0fx" % comparison.reduction_factor)
    for name, exposure in sorted(comparison.domain_exposure.items()):
        print("        %-10s %d" % (name, exposure))


if __name__ == "__main__":
    main()
