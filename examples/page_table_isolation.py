#!/usr/bin/env python
"""Breaking (and keeping) page-table isolation — §2.2 made concrete.

"The memory mapping is controlled by the page table base address
register (e.g., CR3 in x86 and SATP in RISC-V). Once such a register is
abused, attackers can construct malicious mappings and break the page
table isolation."

With the Sv39 MMU turned on, this demo runs that exact attack:

* the legitimate address space maps VA 0x4000_0000 to a *public* frame;
  a secret lives in a physical frame that no mapping exposes;
* the attacker (running hijacked kernel-domain code) has pre-built a
  malicious page table whose 0x4000_0000 points at the secret frame,
  and tries ``csrw satp`` + ``sfence.vma`` to install it;
* **without ISA-Grid** the install succeeds and the secret is read out
  through the attacker's mapping;
* **with ISA-Grid** the kernel domain holds no SATP write privilege:
  the write faults, translation never changes, and the same load still
  returns the public value.

Usage::

    python examples/page_table_isolation.py
"""

from repro.riscv import CSR_ADDRESS, KERNEL_BASE, assemble, build_riscv_system
from repro.riscv.mmu import PTE_R, PTE_W, PTE_X, PageTableBuilder

SECRET_FRAME = 0x0065_0000
PUBLIC_FRAME = 0x0062_0000
WINDOW_VA = 0x4000_0000
SECRET_VALUE = 0x5EC12E7
PUBLIC_VALUE = 0x7AB11C

PROGRAM_TEMPLATE = """
entry:                        # domain-0: install paging + trap handler
    la t0, handler
    csrw stvec, t0
    li t0, %(good_satp)d
    csrw satp, t0
    sfence.vma
    li t0, 0
g_enter:
    hccall t0                 # -> hijacked code in the kernel domain
attacker:
    li t3, %(window)d
    ld s0, 0(t3)              # legitimate read: the public value
    li t0, %(evil_satp)d
    csrw satp, t0             # THE ABUSE: install the malicious table
    sfence.vma
    ld s1, 0(t3)              # same VA again — secret or still public?
    halt
handler:                      # ISA-Grid faults: count, skip, continue
    la t1, %(fault_cell)d
    ld t2, 0(t1)
    addi t2, t2, 1
    sd t2, 0(t1)
    csrr t2, sepc
    addi t2, t2, 4
    csrw sepc, t2
    sret
"""

FAULT_CELL = 0x0063_0000


def run(protected: bool):
    system = build_riscv_system(with_isagrid=True)
    memory = system.machine.memory
    memory.store(SECRET_FRAME, SECRET_VALUE, 8)
    memory.store(PUBLIC_FRAME, PUBLIC_VALUE, 8)

    # Legitimate address space: text, data, and the public window.
    good = PageTableBuilder(memory, 0x0200_0000)
    good.identity_map(KERNEL_BASE, 0x10000, PTE_R | PTE_X)
    good.identity_map(0x0060_0000, 0x40000, PTE_R | PTE_W)   # excludes secret
    good.map_page(WINDOW_VA, PUBLIC_FRAME, PTE_R)

    # The attacker's pre-built malicious table: window -> secret frame.
    evil = PageTableBuilder(memory, 0x0210_0000)
    evil.identity_map(KERNEL_BASE, 0x10000, PTE_R | PTE_X)
    evil.identity_map(0x0060_0000, 0x40000, PTE_R | PTE_W)
    evil.map_page(WINDOW_VA, SECRET_FRAME, PTE_R)

    source = PROGRAM_TEMPLATE % {
        "good_satp": good.satp(asid=1),
        "evil_satp": evil.satp(asid=2),
        "window": WINDOW_VA,
        "fault_cell": FAULT_CELL,
    }
    program = assemble(source, base=KERNEL_BASE)
    system.load(program)

    manager = system.manager
    kernel = manager.create_domain("kernel")
    manager.allow_instructions(
        kernel.domain_id,
        ["alu", "load", "store", "branch", "jump", "csr", "sret", "halt"],
    )
    for name in ("scause", "sepc", "stval"):
        manager.grant_register(kernel.domain_id, name, read=True)
    manager.grant_register(kernel.domain_id, "sepc", write=True)
    manager.grant_register(kernel.domain_id, "stvec", read=True)
    manager.grant_register(kernel.domain_id, "satp", read=True)
    if not protected:
        # Baseline: the kernel domain may install page tables — the
        # privilege-level status quo, where any kernel code can.
        manager.grant_register(kernel.domain_id, "satp", write=True)
        manager.allow_instructions(kernel.domain_id, ["sfence_vma"])
    manager.register_gate(
        program.symbol("g_enter"), program.symbol("attacker"), kernel.domain_id
    )

    system.run(program.symbol("entry"), max_steps=10_000)
    return {
        "legit_read": system.cpu.regs[8],
        "attack_read": system.cpu.regs[9],
        "faults": memory.load(FAULT_CELL, 8),
    }


def main() -> None:
    print("secret frame holds 0x%X; public frame holds 0x%X\n"
          % (SECRET_VALUE, PUBLIC_VALUE))
    for protected in (False, True):
        result = run(protected)
        label = "ISA-Grid (SATP confined)" if protected else "privilege levels only"
        leaked = result["attack_read"] == SECRET_VALUE
        print("%s:" % label)
        print("    legitimate read  : 0x%X" % result["legit_read"])
        print("    post-abuse read  : 0x%X  -> %s"
              % (result["attack_read"],
                 "SECRET LEAKED" if leaked else "still the public value"))
        print("    blocked attempts : %d\n" % result["faults"])
    print("Same attacker code, same hardware — only the SATP write "
          "privilege differs.")


if __name__ == "__main__":
    main()
