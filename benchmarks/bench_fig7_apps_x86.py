"""Figure 7: application workloads on the decomposed x86 kernel.

Same application set as Figure 6, on the Gem5-like O3 prototype.
"""

import pytest

from repro.analysis import Experiment, NormalizedResult, summarize
from repro.workloads import APPLICATIONS, run_x86_app
from repro.workloads.profiles import scaled


def _run_apps():
    results = []
    for base_profile in APPLICATIONS:
        # 3x-length runs so one-time cold PCU misses do not dominate the
        # way they never would in the paper's minutes-long executions.
        profile = scaled(base_profile, 3)
        native = run_x86_app(profile, "native", max_steps=20_000_000)
        decomposed = run_x86_app(profile, "decomposed", max_steps=20_000_000)
        assert native.valid and decomposed.valid
        results.append(
            NormalizedResult(profile.name, native.cycles, decomposed.cycles)
        )
    return results


def bench_fig7_apps_x86(benchmark, experiment_sink):
    results = benchmark.pedantic(_run_apps, rounds=1, iterations=1)

    experiment = Experiment(
        "Figure 7", "Application normalized execution time — decomposition, x86"
    )
    for result in results:
        experiment.add(result.label, "< 1.01", round(result.normalized, 4), "normalized")
    summary = summarize(results)
    experiment.add("geomean", "< 1.01", round(summary["geomean_normalized"], 4), "normalized")
    experiment.shape_criteria += [
        "all four applications under 1% overhead on the O3 core",
    ]
    experiment_sink(experiment)
    benchmark.extra_info.update({r.label: round(r.normalized, 4) for r in results})

    assert summary["max_overhead"] < 0.01, "Figure 7: overhead must stay below 1%"
