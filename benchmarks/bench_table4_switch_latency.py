"""Table 4: domain-switching latency.

Regenerates every row: measured gate latencies on both prototypes, the
per-instruction pipeline costs, the empty system/supervisor calls, and
the literature comparison rows the paper quotes.
"""

import pytest

from repro.analysis import Experiment
from repro.workloads.micro import (
    LITERATURE_ROWS,
    instruction_latencies,
    measure_riscv_gates,
    measure_riscv_supervisor_call,
    measure_riscv_syscall,
    measure_x86_gates,
)

ITERATIONS = 1500


def bench_table4_riscv_gates(benchmark, experiment_sink):
    result = benchmark.pedantic(
        lambda: measure_riscv_gates(iterations=ITERATIONS), rounds=1, iterations=1
    )
    latencies = instruction_latencies()["riscv"]

    experiment = Experiment("Table 4a", "RISC-V Rocket domain switching (cycles)")
    experiment.add("hccall (instruction)", 5, latencies["hccall"], "cycles")
    experiment.add("hccalls (instruction)", 12, latencies["hccalls"], "cycles")
    experiment.add("hcrets (instruction)", 12, latencies["hcrets"], "cycles")
    experiment.add("X-domain call, 2x hccall", 13,
                   round(result["xdomain_two_hccall"], 1), "cycles",
                   "loop-differenced")
    experiment.add("X-domain call, hccalls+hcrets", 32,
                   round(result["hccalls+hcrets"], 1), "cycles",
                   "loop-differenced")
    experiment.shape_criteria += [
        "hccall is a single-digit number of cycles",
        "extended gates cost ~2x the basic gate",
    ]
    experiment_sink(experiment)
    benchmark.extra_info.update({k: round(v, 2) for k, v in result.items()})
    assert latencies["hccall"] == 5
    assert result["hccalls+hcrets"] < 40


def bench_table4_x86_gates(benchmark, experiment_sink):
    result = benchmark.pedantic(
        lambda: measure_x86_gates(iterations=ITERATIONS), rounds=1, iterations=1
    )
    latencies = instruction_latencies()["x86"]

    experiment = Experiment("Table 4b", "x86 Gem5 domain switching (cycles)")
    experiment.add("hccall (instruction)", 34, round(latencies["hccall"], 1), "cycles")
    experiment.add("hccalls (instruction)", 52, round(latencies["hccalls"], 1), "cycles")
    experiment.add("hcrets (instruction)", 44, round(latencies["hcrets"], 1), "cycles")
    experiment.add("hccall (measured loop)", 34, round(result["hccall"], 1), "cycles")
    experiment.add("X-domain call (hccalls+hcrets)", 74,
                   round(result["xdomain_hccalls_hcrets"], 1), "cycles",
                   "store-to-load forwarding")
    experiment.shape_criteria += [
        "X-domain call < hccalls + hcrets (forwarding saves cycles)",
    ]
    experiment_sink(experiment)
    benchmark.extra_info.update({k: round(v, 2) for k, v in result.items()})
    assert result["xdomain_hccalls_hcrets"] < latencies["hccalls"] + latencies["hcrets"]
    assert abs(result["hccall"] - 34) < 2


def bench_table4_calls_and_baselines(benchmark, experiment_sink):
    def run():
        return {
            "syscall": measure_riscv_syscall(iterations=400),
            "syscall_pti": measure_riscv_syscall(pti=True, iterations=400),
            "supervisor": measure_riscv_supervisor_call(iterations=400),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    gates = measure_riscv_gates(iterations=500)

    experiment = Experiment(
        "Table 4c", "Scheme comparison on RISC-V (cycles; MiniKernel paths "
        "are leaner than Linux, so absolute syscall numbers sit lower — "
        "orderings are the reproduced shape)"
    )
    experiment.add("Empty system call w/ PTI", 532, round(result["syscall_pti"], 1), "cycles")
    experiment.add("Empty system call (no PTI)", "-", round(result["syscall"], 1), "cycles")
    experiment.add("Empty supervisor call", 434, round(result["supervisor"], 1), "cycles")
    experiment.add("X-domain call (2x hccall)", 13,
                   round(gates["xdomain_two_hccall"], 1), "cycles")
    for label, cycles in LITERATURE_ROWS.items():
        experiment.add(label, cycles, "(quoted)", "cycles")
    experiment.shape_criteria += [
        "gate switch << supervisor call << syscall w/ PTI << VM trap",
        "PTI adds measurable cost to the syscall path",
    ]
    experiment_sink(experiment)
    benchmark.extra_info.update({k: round(v, 1) for k, v in result.items()})
    assert gates["xdomain_two_hccall"] < result["supervisor"] < result["syscall_pti"]
    assert result["syscall_pti"] > result["syscall"]
    assert result["syscall_pti"] < LITERATURE_ROWS["Empty VM call (virtualization trap)"]
