"""Section 7.1: domain-privilege-cache hit rates.

The paper runs three applications on the decomposed x86 kernel with the
8E. configuration and reports that all HPT caches and the SGT cache
reach 99.9% hit rate, because the gated kernel functions are hot.  Each
application boots a fresh kernel (reset = re-enter domain-0); counters
are aggregated across the three runs.
"""

import pytest

from repro.analysis import Experiment
from repro.core import CONFIG_8E, PcuStats
from repro.kernel import RiscvKernel, X86Kernel
from repro.workloads import GATE_STRESS, SQLITE, TAR
from repro.workloads.generator import riscv_user_program, x86_user_program
from repro.workloads.profiles import scaled

_PROFILES = (scaled(SQLITE, 2), scaled(TAR, 2), scaled(GATE_STRESS, 3))


def _aggregate(kernel_factory, program_factory):
    total = PcuStats()
    for profile in _PROFILES:
        kernel = kernel_factory()
        kernel.run(program_factory(profile), max_steps=20_000_000)
        assert kernel.fault_count == 0
        total.merge(kernel.system.pcu.stats)
    return total


def _report(benchmark, experiment_sink, stats, arch):
    rates = stats.hit_rates()
    experiment = Experiment(
        "§7.1 hit rate (%s)" % arch,
        "Privilege-cache hit rates, 8E., decomposed kernel, 3 applications",
    )
    for cache in ("inst", "reg", "mask", "sgt"):
        experiment.add("%s cache" % cache, ">= 99.9%",
                       "%.2f%%" % (rates[cache] * 100))
    experiment.add("CAM lookups (energy proxy)", "-", stats.total_cam_lookups)
    experiment.add("bypass hit share", "high",
                   "%.2f%%" % (100 * stats.bypass_hits / max(1, stats.inst_checks)))
    experiment.shape_criteria += [
        "all privilege caches above 99% once the kernel paths are hot",
        "the bypass register serves almost all instruction checks",
    ]
    experiment_sink(experiment)
    benchmark.extra_info.update({k: round(v, 5) for k, v in rates.items()})
    for cache, rate in rates.items():
        assert rate > 0.99, "%s cache hit rate %.4f too low" % (cache, rate)
    assert stats.bypass_hits / max(1, stats.inst_checks) > 0.99


def bench_hitrate_x86(benchmark, experiment_sink):
    stats = benchmark.pedantic(
        lambda: _aggregate(lambda: X86Kernel("decomposed", CONFIG_8E), x86_user_program),
        rounds=1, iterations=1,
    )
    _report(benchmark, experiment_sink, stats, "x86")


def bench_hitrate_riscv(benchmark, experiment_sink):
    stats = benchmark.pedantic(
        lambda: _aggregate(lambda: RiscvKernel("decomposed", CONFIG_8E), riscv_user_program),
        rounds=1, iterations=1,
    )
    _report(benchmark, experiment_sink, stats, "RISC-V")
