"""Figure 8: Nested-Kernel monitor overhead on x86 (use case 2).

Nest.Mon. mediates every page-table change through the monitor domain;
Nest.Mon.Log additionally keeps a circular log.  Both are normalized
against the unmodified (native) kernel, paper overhead < 1%.
"""

import pytest

from repro.analysis import Experiment, NormalizedResult, summarize
from repro.workloads import APPLICATIONS, run_x86_app
from repro.workloads.profiles import scaled


def _run_variants():
    rows = []
    for base_profile in APPLICATIONS:
        profile = scaled(base_profile, 3)
        native = run_x86_app(profile, "native", max_steps=20_000_000)
        monitor = run_x86_app(profile, "decomposed", variant="nested", max_steps=20_000_000)
        logged = run_x86_app(profile, "decomposed", variant="nested_log", max_steps=20_000_000)
        assert native.valid and monitor.valid and logged.valid
        rows.append(
            (
                NormalizedResult(profile.name + " (Nest.Mon.)", native.cycles, monitor.cycles),
                NormalizedResult(profile.name + " (Nest.Mon.Log)", native.cycles, logged.cycles),
            )
        )
    return rows


def bench_fig8_nested_kernel(benchmark, experiment_sink):
    rows = benchmark.pedantic(_run_variants, rounds=1, iterations=1)

    experiment = Experiment(
        "Figure 8", "Nested-Kernel monitor normalized execution time — x86"
    )
    flat = []
    for monitor, logged in rows:
        experiment.add(monitor.label, "< 1.01", round(monitor.normalized, 4), "normalized")
        experiment.add(logged.label, "< 1.01", round(logged.normalized, 4), "normalized")
        flat += [monitor, logged]
    summary = summarize(flat)
    experiment.add("geomean", "< 1.01", round(summary["geomean_normalized"], 4), "normalized")
    experiment.shape_criteria += [
        "monitor overhead under 1% for every application",
        "logging variant costs at least as much as the plain monitor",
    ]
    experiment_sink(experiment)
    benchmark.extra_info.update({r.label: round(r.normalized, 4) for r in flat})

    assert summary["max_overhead"] < 0.01
    for monitor, logged in rows:
        assert logged.protected_cycles >= monitor.protected_cycles - 1
