"""Shared infrastructure for the benchmark harness.

Every ``bench_*`` file regenerates one paper table or figure.  The
simulated-cycle results (the quantities the paper reports) are printed
as an :class:`~repro.analysis.report.Experiment` and attached to the
pytest-benchmark record via ``extra_info``; the wall-clock numbers
pytest-benchmark itself measures are simulation speed, not the paper's
metric.

Reports are also written to ``benchmarks/results/`` so they survive
output capture.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def experiment_sink():
    """Write an experiment report to the results directory and stdout."""

    def sink(experiment):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        name = experiment.artifact.lower().replace(" ", "_")
        path = os.path.join(RESULTS_DIR, "%s.txt" % name)
        text = experiment.render()
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print()
        print(text)
        return path

    return sink
