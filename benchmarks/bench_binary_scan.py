"""Section 2.3 motivation: binary scanning vs ISA-Grid.

Quantifies the two failure modes of the software baseline on the real
generated kernel image plus an immediate-heavy module: hidden forbidden
byte sequences that linear disassembly cannot see, and rewrites that
corrupt carrier instructions.
"""

import pytest

from repro.analysis import Experiment
from repro.baselines import rewrite_hidden_bytes, scan_program
from repro.kernel.x86_kernel import kernel_source
from repro.x86 import KERNEL_BASE, assemble


def _build_images():
    source, _ = kernel_source(True)
    kernel = assemble(source, base=KERNEL_BASE)
    # A data-heavy module: immediates contain wrmsr/cli bytes, the way
    # constants and jump tables do in real kernels.
    module_source = "\n".join(
        "    mov rax, 0x%016X" % (0x0000300F_EEFA300F + (i << 40)) for i in range(64)
    ) + "\n    wrmsr\n    ret\n"
    module = assemble(module_source, base=0x200000)
    return kernel.data, module.data


def bench_binary_scan_motivation(benchmark, experiment_sink):
    kernel_code, module_code = benchmark.pedantic(_build_images, rounds=1, iterations=1)

    kernel_reports = scan_program(kernel_code)
    module_reports = scan_program(module_code)
    rewrite = rewrite_hidden_bytes(module_code)

    experiment = Experiment(
        "§2.3 motivation", "Binary scanning on real images (x86 MiniKernel + module)"
    )
    hidden_total = 0
    for mnemonic, report in kernel_reports.items():
        experiment.add(
            "kernel image: %s" % mnemonic,
            "hidden occurrences exist in real binaries",
            "%d total / %d intended / %d hidden" % (
                len(report.total_occurrences),
                len(report.intended_offsets),
                len(report.unintended_offsets),
            ),
        )
        hidden_total += len(report.unintended_offsets)
    wrmsr = module_reports["wrmsr"]
    experiment.add(
        "module: wrmsr (paper: out appears 50k+ times, 300 intended)",
        "hidden >> intended",
        "%d hidden vs %d intended" % (
            len(wrmsr.unintended_offsets), len(wrmsr.intended_offsets)
        ),
    )
    experiment.add(
        "naive rewrite of hidden bytes",
        "corrupts carrier instructions",
        "corrupted %d instructions" % len(rewrite.corrupted_instructions),
    )
    experiment.shape_criteria += [
        "hidden occurrences outnumber intended ones in data-heavy code",
        "rewriting is provably unsafe on this image",
        "ISA-Grid needs no scan: the PCU checks the decoded stream",
    ]
    experiment_sink(experiment)
    benchmark.extra_info["hidden_in_kernel"] = hidden_total

    assert len(wrmsr.unintended_offsets) > 10 * max(1, len(wrmsr.intended_offsets))
    assert not rewrite.safe
