"""Table 1: the attack-mitigation matrix.

Every ISA-abuse-based attack family is run twice — against the native
(privilege-level-only) kernel and against the ISA-Grid-decomposed
kernel.  The paper's claim is the final column: ISA-Grid mitigates
100% of the surveyed attacks.  Gate-forgery attacks (Section 4.2
properties) are additionally run against the decomposed kernel.
"""

import pytest

from repro.analysis import Experiment
from repro.attacks import (
    GATE_ATTACKS,
    POSITIVE_CONTROLS,
    RISCV_ATTACKS,
    TABLE1_ATTACKS,
    run_attack,
)


def _label(outcome):
    if outcome.succeeded:
        return "SUCCEEDS"
    return "mitigated" if outcome.mitigated else "no effect"


def bench_table1_attack_matrix(benchmark, experiment_sink):
    def run():
        rows = []
        for spec in TABLE1_ATTACKS + RISCV_ATTACKS:
            native = run_attack(spec, "native")
            decomposed = run_attack(spec, "decomposed")
            rows.append((spec, native, decomposed))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    experiment = Experiment(
        "Table 1", "ISA-abuse-based attacks: native vs ISA-Grid-decomposed kernel"
    )
    mitigated = 0
    for spec, native, decomposed in rows:
        experiment.add(
            "%s [%s]" % (spec.name, spec.prerequisite),
            "native: succeeds / ISA-Grid: mitigated",
            "native: %s / ISA-Grid: %s" % (_label(native), _label(decomposed)),
            note="hijacked module: %s" % spec.compromised_module,
        )
        assert native.succeeded, spec.name
        assert decomposed.mitigated, spec.name
        mitigated += 1
    experiment.add("mitigation rate", "100%",
                   "%d/%d" % (mitigated, len(rows)))
    experiment.shape_criteria += [
        "every attack succeeds without ISA-Grid",
        "every attack faults (and the system survives) with ISA-Grid",
    ]
    experiment_sink(experiment)
    benchmark.extra_info["mitigated"] = mitigated
    assert mitigated == len(rows)


def bench_table1_gate_forgery(benchmark, experiment_sink):
    def run():
        return [(spec, run_attack(spec, "decomposed")) for spec in GATE_ATTACKS]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    experiment = Experiment(
        "Table 1 (gates)", "Gate forgery and unintended instructions (§4.2, §8)"
    )
    for spec, outcome in rows:
        experiment.add(spec.name, "mitigated", _label(outcome),
                       note=spec.prerequisite)
        assert outcome.mitigated, spec.name
    for spec in POSITIVE_CONTROLS:
        control = run_attack(spec, "decomposed")
        experiment.add(spec.name, "still works", _label(control),
                       note="granted privilege keeps working")
        assert control.succeeded and control.faults == 0
    experiment.shape_criteria += [
        "injected/misaligned gate instructions fault on the address check",
        "hidden wrmsr bytes are blocked at execution time",
        "least privilege: granted resources remain usable",
    ]
    experiment_sink(experiment)
