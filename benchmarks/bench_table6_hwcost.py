"""Table 6: FPGA hardware cost of the three PCU configurations."""

import pytest

from repro.analysis import Experiment
from repro.hwcost import table6_rows


def bench_table6_hwcost(benchmark, experiment_sink):
    rows = benchmark.pedantic(table6_rows, rounds=1, iterations=1)

    paper = {
        "Rocket Core": (51137, 37576, 0.0, 0.0),
        "16E.": (53421, 40280, 4.47, 7.20),
        "8E.": (52685, 39208, 3.03, 4.34),
        "8E.N": (52267, 38683, 2.21, 2.95),
    }

    experiment = Experiment("Table 6", "FPGA resource utilization (Vivado model)")
    for row in rows:
        expected = paper[row["name"]]
        experiment.add(
            "%s LUT / FF" % row["name"],
            "%d / %d (%.2f%% / %.2f%%)" % expected,
            "%d / %d (%.2f%% / %.2f%%)" % (
                row["lut_logic"], row["flip_flops"], row["lut_pct"], row["ff_pct"],
            ),
        )
        assert row["lut_logic"] == pytest.approx(expected[0], abs=5)
        assert row["flip_flops"] == pytest.approx(expected[1], abs=5)
        assert row["ramb36"] == 10 and row["ramb18"] == 10 and row["dsp48e1"] == 15
    experiment.shape_criteria += [
        "cost monotone in cache entries (16E. > 8E. > 8E.N)",
        "RAM blocks and DSPs unchanged across all configurations",
    ]
    experiment_sink(experiment)
    benchmark.extra_info.update(
        {row["name"]: row["lut_logic"] for row in rows}
    )
