"""Figure 5: LMbench normalized execution time, decomposed RISC-V kernel.

The paper's bars hover between 1.00 and ~1.02 across the LMbench
operations.  Each bar here is cycles(decomposed) / cycles(native) for an
identical user instruction stream.
"""

import pytest

from repro.analysis import Experiment, NormalizedResult, summarize
from repro.kernel import RiscvKernel
from repro.workloads import LMBENCH_SUITE, run_riscv


def _run_suite():
    results = []
    for bench in LMBENCH_SUITE:
        native = run_riscv(bench, RiscvKernel("native"))
        decomposed = run_riscv(bench, RiscvKernel("decomposed"))
        results.append(NormalizedResult(bench.name, native, decomposed))
    return results


def bench_fig5_lmbench_riscv(benchmark, experiment_sink):
    results = benchmark.pedantic(_run_suite, rounds=1, iterations=1)

    experiment = Experiment(
        "Figure 5", "LMbench normalized execution time — Linux decomposition, RISC-V"
    )
    for result in results:
        experiment.add(
            result.label, "~1.00-1.02", round(result.normalized, 4),
            "normalized", "%.0f cyc/op native" % (result.baseline_cycles),
        )
    summary = summarize(results)
    experiment.add("geomean", "~1.00", round(summary["geomean_normalized"], 4), "normalized")
    experiment.shape_criteria += [
        "every operation within a few percent of native",
        "gated operations (mmap/sig/ctx) show the largest bars",
        "ungated operations (null/read/stat) are near 1.0",
    ]
    experiment_sink(experiment)
    benchmark.extra_info.update(
        {r.label: round(r.normalized, 4) for r in results}
    )

    assert summary["max_overhead"] < 0.10, "no operation may exceed 10%"
    assert summary["geomean_normalized"] < 1.03
    by_name = {r.label: r.normalized for r in results}
    # gated operations carry more overhead than the null call
    assert by_name["lat_mmap"] >= by_name["lat_null"] - 0.001
