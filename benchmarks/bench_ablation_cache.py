"""Ablations on the design choices DESIGN.md calls out.

Not a paper artifact — these quantify the §4.3 mechanisms directly:

* configuration sweep: 16E. / 8E. / 8E.N end-to-end overhead;
* cache bypass: CAM lookups saved by the instruction privilege register
  (the dynamic-energy argument);
* software prefetch: demand-miss stalls removed by ``pfch``.
"""

import pytest

from repro.analysis import Experiment
from repro.core import ALL_CONFIGS, CONFIG_8E, PcuConfig
from repro.kernel import RiscvKernel
from repro.workloads import GATE_STRESS
from repro.workloads.generator import riscv_user_program


def _run_config(config: PcuConfig):
    kernel = RiscvKernel("decomposed", config)
    stats = kernel.run(riscv_user_program(GATE_STRESS), max_steps=8_000_000)
    assert kernel.fault_count == 0
    return stats.cycles, kernel.system.pcu.stats


def bench_ablation_config_sweep(benchmark, experiment_sink):
    def run():
        return {config.name: _run_config(config) for config in ALL_CONFIGS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    native = RiscvKernel("native").run(
        riscv_user_program(GATE_STRESS), max_steps=8_000_000
    ).cycles

    experiment = Experiment(
        "Ablation A", "PCU configuration sweep (gate-stress workload, RISC-V)"
    )
    for name, (cycles, stats) in results.items():
        experiment.add(
            "%s normalized time" % name, "≈1.0 (all configs)",
            round(cycles / native, 4), "normalized",
            "sgt hit %.1f%%" % (100 * stats.sgt_cache.hit_rate),
        )
    experiment.shape_criteria += [
        "8E.N pays SGT memory reads on every gate yet stays close to 8E.",
        "16E. is never slower than 8E.",
    ]
    experiment_sink(experiment)

    cycles_16 = results["16E."][0]
    cycles_8 = results["8E."][0]
    cycles_8n = results["8E.N"][0]
    assert cycles_16 <= cycles_8 + 1
    assert cycles_8n > cycles_8  # the SGT cache visibly earns its area
    # Gate-stress is the SGT cache's worst case: 3 cross-domain calls
    # per handful of syscalls.  Even then the no-SGT-cache variant stays
    # within ~15% — and real workloads (Figures 5-7) are far below.
    assert cycles_8n / native < 1.15


def bench_ablation_bypass_energy(benchmark, experiment_sink):
    def run():
        with_bypass = _run_config(CONFIG_8E)[1]
        no_bypass = _run_config(
            PcuConfig(name="8E.nobypass", bypass_enabled=False)
        )[1]
        return with_bypass, no_bypass

    with_bypass, no_bypass = benchmark.pedantic(run, rounds=1, iterations=1)

    saved = 1 - with_bypass.inst_cache.lookups / max(1, no_bypass.inst_cache.lookups)
    experiment = Experiment(
        "Ablation B", "Cache bypass: CAM lookups saved (dynamic-energy proxy)"
    )
    experiment.add("inst-cache lookups w/ bypass", "-", with_bypass.inst_cache.lookups)
    experiment.add("inst-cache lookups w/o bypass", "-", no_bypass.inst_cache.lookups)
    experiment.add("lookups saved", "large", "%.2f%%" % (saved * 100))
    experiment.add("bypass hit share", "≈100%",
                   "%.2f%%" % (100 * with_bypass.bypass_hits / max(1, with_bypass.inst_checks)))
    experiment.shape_criteria += [
        "bypass removes the vast majority of fully-associative searches",
    ]
    experiment_sink(experiment)
    assert saved > 0.95


def bench_ablation_draco(benchmark, experiment_sink):
    """§8 'Cache Optimization': a Draco-style legal-access cache skips
    the full check pipeline for previously proven-legal tuples."""
    import dataclasses

    def run():
        baseline = _run_config(CONFIG_8E)[1]
        draco = _run_config(
            dataclasses.replace(CONFIG_8E, name="8E.+draco", draco_entries=64)
        )[1]
        return baseline, draco

    baseline, draco = benchmark.pedantic(run, rounds=1, iterations=1)

    skipped = draco.draco_hits / max(1, draco.inst_checks)
    experiment = Experiment(
        "Ablation D", "Draco-style legal-access cache (§8 Cache Optimization)"
    )
    experiment.add("checks skipped by legal cache", "large",
                   "%.2f%%" % (skipped * 100))
    experiment.add("CSR-check work w/ draco", "-",
                   draco.csr_read_checks + draco.csr_write_checks)
    experiment.add("CSR-check work baseline", "-",
                   baseline.csr_read_checks + baseline.csr_write_checks)
    experiment.shape_criteria += [
        "the legal-access cache absorbs the vast majority of checks",
        "security unchanged: faults are never cached",
    ]
    experiment_sink(experiment)
    assert skipped > 0.90
    assert (draco.csr_read_checks + draco.csr_write_checks) < (
        baseline.csr_read_checks + baseline.csr_write_checks
    )


def bench_ablation_flush_on_switch(benchmark, experiment_sink):
    """§8 security/performance trade-off: flushing the privilege cache
    on every domain switch defeats PRIME+PROBE at a measurable cost."""
    import dataclasses

    def run():
        normal = _run_config(CONFIG_8E)[0]
        hardened = _run_config(
            dataclasses.replace(CONFIG_8E, name="8E.+flush", flush_on_switch=True)
        )[0]
        return normal, hardened

    normal, hardened = benchmark.pedantic(run, rounds=1, iterations=1)

    experiment = Experiment(
        "Ablation E", "Flush-before-switch side-channel hardening (§8)"
    )
    experiment.add("gate-stress cycles, default", "-", round(normal))
    experiment.add("gate-stress cycles, flush-on-switch", "-", round(hardened))
    experiment.add("hardening cost", "a measurable tradeoff",
                   "%+.2f%%" % ((hardened / normal - 1) * 100))
    experiment.shape_criteria += [
        "flushing costs something (every post-switch access misses)",
        "the cost is bounded — tens of percent on the gate-heavy worst case",
    ]
    experiment_sink(experiment)
    assert hardened > normal
    assert hardened / normal < 2.0


def bench_ablation_prefetch(benchmark, experiment_sink):
    """pfch pulls a CSR's privilege structures in ahead of the access."""
    from repro.core import GateKind
    from repro.riscv import KERNEL_BASE, assemble, build_riscv_system

    def measure(prefetch: bool):
        system = build_riscv_system(CONFIG_8E)
        manager = system.manager
        domain = manager.create_domain("bench")
        manager.allow_all_instructions(domain.domain_id)
        manager.grant_register(domain.domain_id, "satp", read=True, write=True)
        body = "    pfch t2\n" if prefetch else "    nop\n"
        source = """
entry:
    li t0, 0
g0:
    hccall t0
start:
    li t2, %d
%s
    li t3, 600
warmup:
    addi t3, t3, -1
    bnez t3, warmup
    csrw satp, t4
    halt
""" % (system.pcu.isa_map.csr_index("satp"), body)
        program = assemble(source, base=KERNEL_BASE)
        system.load(program)
        manager.register_gate(program.symbol("g0"), program.symbol("start"), domain.domain_id)
        system.run(program.symbol("entry"), max_steps=10_000)
        return system.pcu.stats.reg_cache

    def run():
        return measure(prefetch=True), measure(prefetch=False)

    with_prefetch, without = benchmark.pedantic(run, rounds=1, iterations=1)

    experiment = Experiment(
        "Ablation C", "Software prefetch (pfch) vs demand miss on first CSR access"
    )
    experiment.add("reg-cache demand misses w/ pfch", 0, with_prefetch.misses)
    experiment.add("reg-cache demand misses w/o pfch", ">= 1", without.misses)
    experiment.add("prefetch fills", 1, with_prefetch.prefetch_fills)
    experiment.shape_criteria += [
        "the prefetched access hits where the demand access misses",
    ]
    experiment_sink(experiment)
    assert with_prefetch.misses == 0
    assert without.misses >= 1
    assert with_prefetch.prefetch_fills >= 1
