"""Figure 6: application workloads on the decomposed RISC-V kernel.

SQLite / Mbedtls / gzip / tar, normalized against the native kernel.
The paper reports less than 1% overhead on real applications.
"""

import pytest

from repro.analysis import Experiment, NormalizedResult, summarize
from repro.workloads import APPLICATIONS, normalized_time, run_riscv_app


def _run_apps():
    results = []
    for profile in APPLICATIONS:
        native = run_riscv_app(profile, "native")
        decomposed = run_riscv_app(profile, "decomposed")
        assert native.valid and decomposed.valid
        results.append(
            NormalizedResult(profile.name, native.cycles, decomposed.cycles)
        )
    return results


def bench_fig6_apps_riscv(benchmark, experiment_sink):
    results = benchmark.pedantic(_run_apps, rounds=1, iterations=1)

    experiment = Experiment(
        "Figure 6", "Application normalized execution time — decomposition, RISC-V"
    )
    for result in results:
        experiment.add(result.label, "< 1.01", round(result.normalized, 4), "normalized")
    summary = summarize(results)
    experiment.add("geomean", "< 1.01", round(summary["geomean_normalized"], 4), "normalized")
    experiment.shape_criteria += [
        "all four applications under 1% overhead",
        "syscall-light Mbedtls near zero overhead",
    ]
    experiment_sink(experiment)
    benchmark.extra_info.update({r.label: round(r.normalized, 4) for r in results})

    assert summary["max_overhead"] < 0.01, "Figure 6: overhead must stay below 1%"
