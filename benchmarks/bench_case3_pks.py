"""Case 3 (§7.2): PKS + ISA-Grid trampoline estimate.

The paper composes: wrpkru (26 cycles, from Hodor) + MPK trampoline
(105 cycles) + two measured ``hccall`` switches (70) = 175 cycles, and
compares against page-table switching (938 / 577) and vmfunc (268).
A functional demo additionally shows wrpkrs is dead outside the
trampoline domain.
"""

import pytest

from repro.analysis import Experiment
from repro.kernel import estimate_case3, run_pks_demo


def bench_case3_pks_estimate(benchmark, experiment_sink):
    estimate = benchmark.pedantic(estimate_case3, rounds=1, iterations=1)

    experiment = Experiment("Case 3", "PKS + ISA-Grid domain switch (cycles)")
    experiment.add("two hccall (measured)", 70, round(estimate.two_hccall_cycles, 1), "cycles")
    experiment.add("MPK trampoline (quoted)", 105, estimate.mpk_trampoline_cycles, "cycles")
    experiment.add("wrpkru (quoted)", 26, estimate.wrpkru_cycles, "cycles")
    experiment.add("PKS + ISA-Grid total", 175,
                   round(estimate.pks_with_isagrid_cycles, 1), "cycles")
    for label, cost in estimate.alternatives.items():
        experiment.add(label, cost, "(quoted)", "cycles")
    experiment.shape_criteria += [
        "PKS+ISA-Grid beats vmfunc (268) and page-table switches (577/938)",
    ]
    experiment_sink(experiment)
    benchmark.extra_info["total_cycles"] = round(estimate.pks_with_isagrid_cycles, 1)

    assert estimate.pks_with_isagrid_cycles == pytest.approx(175, rel=0.1)
    assert estimate.faster_than_all_alternatives


def bench_case3_pks_guard_demo(benchmark, experiment_sink):
    demo = benchmark.pedantic(run_pks_demo, rounds=1, iterations=1)

    experiment = Experiment("Case 3 (guard)", "wrpkrs confined to the trampoline domain")
    experiment.add("wrpkrs inside trampoline", "executes",
                   "executes" if demo.trampoline_writes_succeeded else "BLOCKED")
    experiment.add("wrpkrs outside trampoline", "faults",
                   "faults" if demo.outside_write_blocked else "EXECUTES")
    experiment_sink(experiment)
    assert demo.guarded
