"""Table 5: multi-service protection latency (use case 4).

Four kernel services (CPUID info, MTRR memory type, PMC interrupt
count, PMC iTLB/I-cache misses), each in its own ISA domain, invoked
through an ioctl-style syscall.  The paper measures 1700-2100 cycles
per call with < 5% ISA-Grid overhead.
"""

import pytest

from repro.analysis import Experiment
from repro.kernel import (
    SERVICE_CPUID,
    SERVICE_MTRR,
    SERVICE_PMC_IRQ,
    SERVICE_PMC_MISS,
    X86Kernel,
)
from repro.x86 import USER_BASE, assemble

ITERATIONS = 300

_PAPER_ROWS = {
    "Service-1 (CPUID)": (2081, 1997, 4.21),
    "Service-2 (MTRR)": (2038, 1970, 3.45),
    "Service-3 (PMC interrupts)": (1803, 1721, 4.76),
    "Service-4 (PMC iTLB miss)": (1776, 1698, 4.60),
}

_SERVICES = [
    ("Service-1 (CPUID)", SERVICE_CPUID),
    ("Service-2 (MTRR)", SERVICE_MTRR),
    ("Service-3 (PMC interrupts)", SERVICE_PMC_IRQ),
    ("Service-4 (PMC iTLB miss)", SERVICE_PMC_MISS),
]


def _service_loop(service: int) -> str:
    return """
user_entry:
    mov rsp, 0x6f0000
    mov r12, %d
loop:
    mov rax, 12
    mov rdi, %d
    syscall
    sub r12, 1
    jne loop
    mov rax, 0
    mov rdi, 0
    syscall
""" % (ITERATIONS, service)


def _measure(kernel_mode: str, service: int) -> float:
    kernel = X86Kernel(kernel_mode)
    program = assemble(_service_loop(service), base=USER_BASE)
    stats = kernel.run(program, max_steps=600 * ITERATIONS + 2000)
    assert kernel.fault_count == 0
    return stats.cycles / ITERATIONS


def bench_table5_services(benchmark, experiment_sink):
    def run():
        rows = []
        for label, service in _SERVICES:
            native = _measure("native", service)
            protected = _measure("decomposed", service)
            rows.append((label, native, protected))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    experiment = Experiment(
        "Table 5",
        "Latency for ioctl services in separate ISA domains (cycles). "
        "MiniKernel's ioctl path (~350-450 cycles) is far leaner than "
        "Linux's (~1700-2000), so the same absolute gate cost is a "
        "larger fraction here; the 'projected' column scales the "
        "measured protection delta onto the paper's native latency.",
    )
    for label, native, protected in rows:
        paper_isagrid, paper_native, paper_overhead = _PAPER_ROWS[label]
        delta = protected - native
        overhead = delta / native * 100
        projected = delta / paper_native * 100
        experiment.add(
            label,
            "%d vs %d (+%.2f%%)" % (paper_isagrid, paper_native, paper_overhead),
            "%.0f vs %.0f (+%.2f%%; projected +%.2f%%)"
            % (protected, native, overhead, projected),
            "cycles",
        )
        assert protected > native, "protection must cost something"
        # The absolute protection cost is two gates plus residual cache
        # effects — the quantity that transfers across kernels.
        assert 50 < delta < 150, "%s delta %.0f out of range" % (label, delta)
        assert projected < 8.0, "%s projected overhead too high" % label
    experiment.shape_criteria += [
        "absolute protection cost ≈ one hccalls+hcrets pair (~74 cycles)",
        "projected onto the paper's native latency: ~4-5%, matching Table 5",
    ]
    experiment_sink(experiment)
    benchmark.extra_info.update(
        {label: round((p - n) / n * 100, 2) for label, n, p in rows}
    )
